"""Lowering: MiniC AST -> repro IR.

The lowering is deliberately plain -- one pass, no clever local
optimization -- because HELIX itself (Step 5) is responsible for the
scheduling that matters.  Two properties are load-bearing for the rest of
the system:

* Local scalars live in virtual registers and local arrays in frame
  symbols, so iteration-private state is invisible to other threads
  (paper, Step 2: false dependences through registers/stack are excluded).
* Global variables are always accessed through LOADG/STOREG, so every
  shared-memory dependence is visible to the dependence analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import MiniCError
from repro.frontend.parser import parse
from repro.obs import get_tracer
from repro.ir import (
    BasicBlock,
    Const,
    Function,
    Instruction,
    IRBuilder,
    Module,
    Opcode,
    Operand,
    Symbol,
    Type,
    VReg,
    verify_module,
)
from repro.ir.operands import operand_type

_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
}


@dataclass
class Value:
    """A lowered expression: an operand plus, for pointers, the pointee type."""

    operand: Operand
    pointee: Optional[Type] = None

    @property
    def type(self) -> Type:
        return operand_type(self.operand)


@dataclass
class ScalarBinding:
    """A local scalar bound to a (mutable) virtual register."""

    reg: VReg
    pointee: Optional[Type] = None


@dataclass
class ArrayBinding:
    """A local or global array bound to a memory symbol."""

    symbol: Symbol


@dataclass
class GlobalScalarBinding:
    """A global scalar (size-1 region) accessed through loads/stores."""

    symbol: Symbol


Binding = Union[ScalarBinding, ArrayBinding, GlobalScalarBinding]


@dataclass
class Signature:
    """A function signature resolved during the declaration pass."""

    return_type: Type
    return_pointee: Optional[Type]
    param_types: List[Type]
    param_pointees: List[Optional[Type]]


def _resolve_type(spec: ast.TypeSpec) -> Tuple[Type, Optional[Type]]:
    """Map a TypeSpec to (IR type, pointee type or None)."""
    base = {"int": Type.INT, "float": Type.FLOAT, "void": Type.VOID}[spec.base]
    if spec.is_pointer:
        if base is Type.VOID:
            raise MiniCError("void* is not supported", spec.line, spec.column)
        return Type.PTR, base
    return base, None


class FunctionLowerer:
    """Lowers one MiniC function body into IR."""

    def __init__(
        self,
        module: Module,
        signatures: Dict[str, Signature],
        globals_env: Dict[str, Binding],
        func_def: ast.FuncDef,
    ) -> None:
        self.module = module
        self.signatures = signatures
        self.func_def = func_def
        sig = signatures[func_def.name]
        self.func = Function(func_def.name, sig.return_type)
        self.builder = IRBuilder(self.func)
        self.scopes: List[Dict[str, Binding]] = [globals_env, {}]
        #: (continue_target, break_target) stack for loop statements.
        self.loop_targets: List[Tuple[BasicBlock, BasicBlock]] = []
        for param, ptype, pointee in zip(
            func_def.params, sig.param_types, sig.param_pointees
        ):
            reg = self.func.add_param(ptype, param.name)
            self.declare(param.name, ScalarBinding(reg, pointee), param)

    # -- scope management -----------------------------------------------------

    def declare(self, name: str, binding: Binding, node: ast.Node) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise MiniCError(f"redeclaration of {name!r}", node.line, node.column)
        scope[name] = binding

    def lookup(self, name: str, node: ast.Node) -> Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise MiniCError(f"undeclared identifier {name!r}", node.line, node.column)

    # -- entry point ----------------------------------------------------------

    def lower(self) -> Function:
        self.builder.start_block("entry")
        self.lower_block(self.func_def.body, new_scope=False)
        if self.builder.block is not None and not self.builder.block.is_terminated:
            self.emit_default_return()
        self._terminate_stragglers()
        self._remove_unreachable_blocks()
        return self.func

    def emit_default_return(self) -> None:
        if self.func.return_type is Type.VOID:
            self.builder.ret()
        elif self.func.return_type is Type.FLOAT:
            self.builder.ret(Const.float(0.0))
        else:
            self.builder.ret(Const.int(0))

    def _terminate_stragglers(self) -> None:
        """Blocks left open by break/return paths get a default return."""
        for block in self.func.block_order():
            if not block.is_terminated:
                self.builder.set_block(block)
                self.emit_default_return()

    def _remove_unreachable_blocks(self) -> None:
        reachable = {self.func.entry.name}
        work = [self.func.entry]
        while work:
            block = work.pop()
            for name in block.successor_names():
                if name not in reachable:
                    reachable.add(name)
                    work.append(self.func.blocks[name])
        for name in list(self.func.blocks):
            if name not in reachable:
                self.func.remove_block(name)

    # -- statements ------------------------------------------------------------

    def lower_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.statements:
            self.lower_statement(stmt)
            if self.builder.block is not None and self.builder.block.is_terminated:
                # Code after return/break/continue in this block is dead;
                # keep lowering it into a fresh unreachable block so errors
                # are still diagnosed, then let cleanup drop it.
                self.builder.start_block("dead")
        if new_scope:
            self.scopes.pop()

    def lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self.lower_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.lower_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self.lower_continue(stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise MiniCError(f"unsupported statement {type(stmt).__name__}")

    def lower_var_decl(self, stmt: ast.VarDecl) -> None:
        var_type, pointee = _resolve_type(stmt.type)
        if stmt.array_size is not None:
            if stmt.type.is_pointer:
                raise MiniCError(
                    "arrays of pointers are not supported", stmt.line, stmt.column
                )
            unique = stmt.name
            suffix = 0
            while unique in self.func.locals:
                suffix += 1
                unique = f"{stmt.name}.{suffix}"
            symbol = self.func.add_local_array(unique, var_type, stmt.array_size)
            self.declare(stmt.name, ArrayBinding(symbol), stmt)
            return
        reg = self.func.new_vreg(var_type, stmt.name)
        self.declare(stmt.name, ScalarBinding(reg, pointee), stmt)
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.store_scalar(reg, value, stmt)
        else:
            zero = Const.float(0.0) if var_type is Type.FLOAT else Const.int(0)
            self.builder.emit(Instruction(Opcode.MOV, dest=reg, args=(zero,)))

    def store_scalar(self, reg: VReg, value: Value, node: ast.Node) -> None:
        operand = value.operand
        if reg.type is Type.PTR:
            if value.type is not Type.PTR:
                raise MiniCError(
                    "cannot assign non-pointer to pointer", node.line, node.column
                )
        else:
            operand = self.builder.coerce(operand, reg.type)
        self.builder.emit(Instruction(Opcode.MOV, dest=reg, args=(operand,)))

    def lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            self.assign_name(stmt, target)
        elif isinstance(target, ast.Index):
            self.assign_index(stmt, target)
        elif isinstance(target, ast.Unary) and target.op == "*":
            self.assign_deref(stmt, target)
        else:
            raise MiniCError("invalid assignment target", stmt.line, stmt.column)

    def _combined(self, stmt: ast.Assign, current: Value) -> Value:
        """Value to store: plain rhs, or current `op` rhs for compound ops."""
        rhs = self.lower_expr(stmt.value)
        if not stmt.op:
            return rhs
        return self.apply_binary(stmt.op, current, rhs, stmt)

    def assign_name(self, stmt: ast.Assign, target: ast.Name) -> None:
        binding = self.lookup(target.ident, target)
        if isinstance(binding, ScalarBinding):
            if stmt.op:
                current = Value(binding.reg, binding.pointee)
                value = self._combined(stmt, current)
            else:
                value = self.lower_expr(stmt.value)
            self.store_scalar(binding.reg, value, stmt)
            if binding.reg.type is Type.PTR:
                binding.pointee = value.pointee or binding.pointee
        elif isinstance(binding, GlobalScalarBinding):
            sym = binding.symbol
            if stmt.op:
                current = Value(self.builder.loadg(sym))
                value = self._combined(stmt, current)
            else:
                value = self.lower_expr(stmt.value)
            self.builder.storeg(sym, Const.int(0), value.operand)
        else:
            raise MiniCError(
                f"cannot assign to array {target.ident!r}", stmt.line, stmt.column
            )

    def assign_index(self, stmt: ast.Assign, target: ast.Index) -> None:
        base, index = self.lower_place(target)
        if isinstance(base, Symbol):
            if stmt.op:
                current = Value(self.builder.loadg(base, index))
                value = self._combined(stmt, current)
            else:
                value = self.lower_expr(stmt.value)
            self.builder.storeg(base, index, value.operand)
        else:
            pointee = base.pointee or Type.INT
            if stmt.op:
                current = Value(self.builder.loadp(base.operand, index, pointee))
                value = self._combined(stmt, current)
            else:
                value = self.lower_expr(stmt.value)
            operand = self.builder.coerce(value.operand, pointee)
            self.builder.storep(base.operand, index, operand)

    def assign_deref(self, stmt: ast.Assign, target: ast.Unary) -> None:
        ptr = self.lower_expr(target.operand)
        if ptr.type is not Type.PTR:
            raise MiniCError("cannot dereference non-pointer", stmt.line, stmt.column)
        pointee = ptr.pointee or Type.INT
        if stmt.op:
            current = Value(self.builder.loadp(ptr.operand, Const.int(0), pointee))
            value = self._combined(stmt, current)
        else:
            value = self.lower_expr(stmt.value)
        operand = self.builder.coerce(value.operand, pointee)
        self.builder.storep(ptr.operand, Const.int(0), operand)

    def lower_place(
        self, target: ast.Index
    ) -> Tuple[Union[Symbol, Value], Operand]:
        """Resolve ``base[index]`` to (array symbol | pointer value, index)."""
        index = self.builder.coerce(self.lower_expr(target.index).operand, Type.INT)
        if isinstance(target.base, ast.Name):
            binding = self.lookup(target.base.ident, target.base)
            if isinstance(binding, ArrayBinding):
                return binding.symbol, index
            if isinstance(binding, GlobalScalarBinding):
                raise MiniCError(
                    f"{target.base.ident!r} is not an array",
                    target.line,
                    target.column,
                )
        base = self.lower_expr(target.base)
        if base.type is not Type.PTR:
            raise MiniCError("subscripted value is not an array or pointer",
                             target.line, target.column)
        return base, index

    def lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.builder.new_block("then")
        merge_block = self.builder.new_block("endif")
        else_block = (
            self.builder.new_block("else") if stmt.orelse is not None else merge_block
        )
        self.builder.cbr(cond.operand, then_block, else_block)
        self.builder.set_block(then_block)
        self.lower_block(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.br(merge_block)
        if stmt.orelse is not None:
            self.builder.set_block(else_block)
            self.lower_block(stmt.orelse)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)
        self.builder.set_block(merge_block)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.builder.new_block("while")
        body = self.builder.new_block("body")
        exit_block = self.builder.new_block("endwhile")
        self.builder.br(header)
        self.builder.set_block(header)
        cond = self.lower_expr(stmt.cond)
        self.builder.cbr(cond.operand, body, exit_block)
        self.builder.set_block(body)
        self.loop_targets.append((header, exit_block))
        self.lower_block(stmt.body)
        self.loop_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(header)
        self.builder.set_block(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        header = self.builder.new_block("for")
        body = self.builder.new_block("body")
        step_block = self.builder.new_block("step")
        exit_block = self.builder.new_block("endfor")
        self.builder.br(header)
        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self.builder.cbr(cond.operand, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.set_block(body)
        self.loop_targets.append((step_block, exit_block))
        self.lower_block(stmt.body)
        self.loop_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)
        self.builder.set_block(step_block)
        if stmt.step is not None:
            self.lower_statement(stmt.step)
        self.builder.br(header)
        self.builder.set_block(exit_block)

    def lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if self.func.return_type is not Type.VOID:
                raise MiniCError(
                    f"{self.func.name} must return a value", stmt.line, stmt.column
                )
            self.builder.ret()
            return
        if self.func.return_type is Type.VOID:
            raise MiniCError(
                f"{self.func.name} returns void", stmt.line, stmt.column
            )
        value = self.lower_expr(stmt.value)
        if self.func.return_type is Type.PTR:
            if value.type is not Type.PTR:
                raise MiniCError("must return a pointer", stmt.line, stmt.column)
            self.builder.emit(Instruction(Opcode.RET, args=(value.operand,)))
        else:
            self.builder.ret(value.operand)

    def lower_break(self, stmt: ast.Break) -> None:
        if not self.loop_targets:
            raise MiniCError("break outside loop", stmt.line, stmt.column)
        self.builder.br(self.loop_targets[-1][1])

    def lower_continue(self, stmt: ast.Continue) -> None:
        if not self.loop_targets:
            raise MiniCError("continue outside loop", stmt.line, stmt.column)
        self.builder.br(self.loop_targets[-1][0])

    # -- expressions -----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Value(Const.int(expr.value))
        if isinstance(expr, ast.FloatLit):
            return Value(Const.float(expr.value))
        if isinstance(expr, ast.Name):
            return self.lower_name(expr)
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Index):
            return self.lower_index(expr)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr)
        raise MiniCError(f"unsupported expression {type(expr).__name__}")

    def lower_name(self, expr: ast.Name) -> Value:
        binding = self.lookup(expr.ident, expr)
        if isinstance(binding, ScalarBinding):
            return Value(binding.reg, binding.pointee)
        if isinstance(binding, GlobalScalarBinding):
            return Value(self.builder.loadg(binding.symbol))
        # Arrays decay to pointers when used as values.
        sym = binding.symbol
        return Value(self.builder.lea(sym), sym.elem_type)

    def lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "&":
            return self.lower_address_of(expr.operand, expr)
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            if operand.type is Type.PTR:
                raise MiniCError("cannot negate pointer", expr.line, expr.column)
            if isinstance(operand.operand, Const):
                const = operand.operand
                if const.type is Type.INT:
                    return Value(Const.int(-const.value))
                return Value(Const.float(-const.value))
            return Value(self.builder.neg(operand.operand))
        if expr.op == "!":
            value = self.builder.coerce(operand.operand, Type.INT)
            return Value(self.builder.logical_not(value))
        if expr.op == "*":
            if operand.type is not Type.PTR:
                raise MiniCError(
                    "cannot dereference non-pointer", expr.line, expr.column
                )
            pointee = operand.pointee or Type.INT
            return Value(self.builder.loadp(operand.operand, Const.int(0), pointee))
        raise MiniCError(f"unsupported unary {expr.op!r}", expr.line, expr.column)

    def lower_address_of(self, target: ast.Expr, node: ast.Unary) -> Value:
        if isinstance(target, ast.Name):
            binding = self.lookup(target.ident, target)
            if isinstance(binding, ArrayBinding):
                sym = binding.symbol
                return Value(self.builder.lea(sym), sym.elem_type)
            if isinstance(binding, GlobalScalarBinding):
                sym = binding.symbol
                return Value(self.builder.lea(sym), sym.elem_type)
            raise MiniCError(
                "cannot take address of register variable", node.line, node.column
            )
        if isinstance(target, ast.Index):
            base, index = self.lower_place(target)
            if isinstance(base, Symbol):
                return Value(self.builder.lea(base, index), base.elem_type)
            return Value(self.builder.ptradd(base.operand, index), base.pointee)
        raise MiniCError("cannot take address of expression", node.line, node.column)

    def apply_binary(
        self, op: str, left: Value, right: Value, node: ast.Node
    ) -> Value:
        if op in ("&&", "||"):
            raise MiniCError(
                "short-circuit op in compound assignment", node.line, node.column
            )
        opcode = _BINOP_OPCODES[op]
        # Pointer arithmetic: ptr +/- int and array-style offsets.
        if left.type is Type.PTR or right.type is Type.PTR:
            if op == "+":
                ptr, offset = (left, right) if left.type is Type.PTR else (right, left)
                idx = self.builder.coerce(offset.operand, Type.INT)
                return Value(self.builder.ptradd(ptr.operand, idx), ptr.pointee)
            if op == "-" and left.type is Type.PTR and right.type is not Type.PTR:
                idx = self.builder.coerce(right.operand, Type.INT)
                neg = self.builder.binop(Opcode.SUB, Const.int(0), idx)
                return Value(self.builder.ptradd(left.operand, neg), left.pointee)
            raise MiniCError(
                f"operator {op!r} not defined on pointers", node.line, node.column
            )
        return Value(self.builder.binop(opcode, left.operand, right.operand))

    def lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        return self.apply_binary(expr.op, left, right, expr)

    def lower_short_circuit(self, expr: ast.Binary) -> Value:
        """Lower '&&'/'||' with control flow into a 0/1 register."""
        result = self.func.new_vreg(Type.INT)
        rhs_block = self.builder.new_block("sc_rhs")
        done_block = self.builder.new_block("sc_done")
        short_block = self.builder.new_block("sc_short")

        left = self.lower_expr(expr.left)
        cond = self.builder.coerce(left.operand, Type.INT)
        if expr.op == "&&":
            self.builder.cbr(cond, rhs_block, short_block)
            short_value = Const.int(0)
        else:
            self.builder.cbr(cond, short_block, rhs_block)
            short_value = Const.int(1)

        self.builder.set_block(short_block)
        self.builder.emit(Instruction(Opcode.MOV, dest=result, args=(short_value,)))
        self.builder.br(done_block)

        self.builder.set_block(rhs_block)
        right = self.lower_expr(expr.right)
        rhs_value = self.builder.coerce(right.operand, Type.INT)
        normalized = self.builder.cmp(Opcode.NE, rhs_value, Const.int(0))
        self.builder.emit(Instruction(Opcode.MOV, dest=result, args=(normalized,)))
        self.builder.br(done_block)

        self.builder.set_block(done_block)
        return Value(result)

    def lower_index(self, expr: ast.Index) -> Value:
        base, index = self.lower_place(expr)
        if isinstance(base, Symbol):
            return Value(self.builder.loadg(base, index))
        pointee = base.pointee or Type.INT
        return Value(self.builder.loadp(base.operand, index, pointee))

    def lower_call(self, expr: ast.Call) -> Value:
        if expr.callee == "print":
            if len(expr.args) != 1:
                raise MiniCError("print takes one argument", expr.line, expr.column)
            value = self.lower_expr(expr.args[0])
            self.builder.print(value.operand)
            return Value(Const.int(0))
        sig = self.signatures.get(expr.callee)
        if sig is None:
            raise MiniCError(
                f"call to undefined function {expr.callee!r}",
                expr.line,
                expr.column,
            )
        if len(expr.args) != len(sig.param_types):
            raise MiniCError(
                f"{expr.callee} expects {len(sig.param_types)} args, "
                f"got {len(expr.args)}",
                expr.line,
                expr.column,
            )
        lowered: List[Operand] = []
        for arg, ptype in zip(expr.args, sig.param_types):
            value = self.lower_expr(arg)
            if ptype is Type.PTR:
                if value.type is not Type.PTR:
                    raise MiniCError(
                        f"argument to {expr.callee} must be a pointer",
                        arg.line,
                        arg.column,
                    )
                lowered.append(value.operand)
            else:
                lowered.append(self.builder.coerce(value.operand, ptype))
        dest = None
        if sig.return_type is not Type.VOID:
            dest = self.func.new_vreg(sig.return_type)
        self.builder.emit(
            Instruction(
                Opcode.CALL, dest=dest, args=tuple(lowered), callee=expr.callee
            )
        )
        if dest is None:
            return Value(Const.int(0))
        return Value(dest, sig.return_pointee)


def lower_program(program: ast.Program, name: str = "program") -> Module:
    """Lower a parsed MiniC program to an IR module (verified)."""
    module = Module(name)
    signatures: Dict[str, Signature] = {}
    globals_env: Dict[str, Binding] = {}
    func_defs: List[ast.FuncDef] = []

    for item in program.items:
        if isinstance(item, ast.GlobalDecl):
            var_type, pointee = _resolve_type(item.type)
            if pointee is not None:
                raise MiniCError(
                    "global pointers are not supported", item.line, item.column
                )
            size = item.array_size if item.array_size is not None else 1
            init = item.init
            if init is not None and var_type is Type.FLOAT:
                init = [float(v) for v in init]
            if init is not None and var_type is Type.INT:
                for v in init:
                    if not isinstance(v, int):
                        raise MiniCError(
                            f"float initializer for int global {item.name!r}",
                            item.line,
                            item.column,
                        )
            symbol = module.add_global(item.name, var_type, size, init)
            if item.array_size is None:
                globals_env[item.name] = GlobalScalarBinding(symbol)
            else:
                globals_env[item.name] = ArrayBinding(symbol)
        else:
            return_type, return_pointee = _resolve_type(item.return_type)
            param_types: List[Type] = []
            param_pointees: List[Optional[Type]] = []
            for param in item.params:
                ptype, pointee = _resolve_type(param.type)
                param_types.append(ptype)
                param_pointees.append(pointee)
            if item.name in signatures:
                raise MiniCError(
                    f"redefinition of function {item.name!r}",
                    item.line,
                    item.column,
                )
            signatures[item.name] = Signature(
                return_type, return_pointee, param_types, param_pointees
            )
            func_defs.append(item)

    for func_def in func_defs:
        lowerer = FunctionLowerer(module, signatures, globals_env, func_def)
        module.add_function(lowerer.lower())

    if "main" not in module.functions:
        raise MiniCError("program has no 'main' function")
    verify_module(module)
    return module


def compile_source(source: str, name: str = "program") -> Module:
    """Compile MiniC source text to a verified IR module."""
    tracer = get_tracer()
    with tracer.span("frontend.parse", cat="frontend", program=name):
        tree = parse(source)
    with tracer.span("frontend.lower", cat="frontend", program=name):
        return lower_program(tree, name)
