"""MiniC frontend: a C-subset language compiled to the repro IR.

MiniC stands in for GCC4CLI + C in the original HELIX toolchain.  It keeps
exactly the features the paper's workloads exercise: integers, floats,
one-dimensional arrays (global and frame-local), pointers with arithmetic,
functions, and unrestricted (irregular) control flow -- ``if``/``else``,
``while``, ``for``, ``break``, ``continue``, early ``return``, short-circuit
booleans.

Typical use::

    from repro.frontend import compile_source
    module = compile_source(open("program.mc").read())
"""

from repro.frontend.errors import MiniCError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse
from repro.frontend.lower import compile_source, lower_program

__all__ = [
    "MiniCError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "lower_program",
    "compile_source",
]
