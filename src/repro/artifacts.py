"""Unified, content-addressed artifact store for the evaluation stack.

Before the service refactor the pipeline's cached artifacts lived behind
two private APIs: :class:`EvaluationRunner` kept ``_disk_key`` /
``_disk_load`` / ``_disk_store`` helpers beside
:mod:`repro.evaluation.cache`, and every
:class:`~repro.runtime.parallel.ParallelExecutor` grew its own
schedule-column memo dict.  The :class:`ArtifactStore` absorbs both
behind one keyed API:

* **Stage artifacts** (modules, profiles, sequential results, executed
  pipelines) are addressed by :meth:`stage_key` -- *byte-identical* to
  the fingerprints the runner used to compute privately, so caches
  written before the refactor stay warm after it -- and persisted
  through an optional :class:`~repro.evaluation.cache.EvaluationCache`.
* **Schedule columns** (per-machine :class:`ScheduleResult` lists,
  aligned with an executor's recorded traces) live in
  :class:`ScheduleMemo` namespaces handed out by
  :meth:`schedule_memo`; the store keeps a registry of them so one
  :meth:`counters` call describes every memoized column in the process.
* **Generated interpreter code** (the superblock tiers' source +
  bytecode manifests, kind ``"codegen"``) is content-addressed by
  :func:`repro.runtime.codegen.artifact_key` -- function IR + hook
  flags + codegen version, *excluding* machine shape -- so warm suite
  re-runs and ``repro serve`` resubmissions (even at different core
  counts) skip decode+codegen, and ``suite --jobs`` workers shard cold
  compiles through the shared cache directory.  The runtime layer sees
  the store duck-typed (``load``/``store``), keeping it free of
  evaluation imports.

One store is shared by every runner of an orchestrator (and by all the
daemon's worker threads): artifacts travel between them by key, exactly
as the process-parallel suite runner already moves them between worker
processes.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.bench import benchmark_fingerprint

if TYPE_CHECKING:  # imported lazily at runtime: evaluation imports us
    from repro.evaluation.cache import EvaluationCache


class ScheduleMemo(Dict[str, List[Any]]):
    """One executor's schedule-column namespace.

    A plain dict of machine fingerprint -> list of
    :class:`~repro.runtime.sched.ScheduleResult` columns (aligned with
    the owning executor's trace list), as
    :class:`~repro.runtime.parallel.ParallelExecutor` has always kept --
    but handed out and tracked by an :class:`ArtifactStore` so schedule
    memoization shows up in the same accounting as disk artifacts.
    """

    def occupancy(self) -> Dict[str, int]:
        return {
            "machines": len(self),
            "columns": sum(len(column) for column in self.values()),
        }


class ArtifactStore:
    """Content-addressed artifact store unifying disk + schedule memos.

    ``cache`` may be an :class:`EvaluationCache`, a directory path, or
    ``None`` (memory-only: stage loads always miss, schedule memos still
    work).  The store is safe to share across threads: the disk layer
    already uses atomic writes, and the counters are lock-protected.
    """

    def __init__(
        self,
        cache: Union["EvaluationCache", str, Path, None] = None,
    ) -> None:
        if isinstance(cache, (str, Path)):
            from repro.evaluation.cache import EvaluationCache

            cache = EvaluationCache(cache)
        self.cache: Optional["EvaluationCache"] = cache
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._stores: Dict[str, int] = {}
        self._memos: List[ScheduleMemo] = []

    # -- stage artifacts ---------------------------------------------------

    def stage_key(
        self, bench: str, scales: Sequence[str], extra: dict
    ) -> str:
        """Key of one stage artifact: code version + benchmark sources
        at the scales the stage consumed + stage-specific components.

        This is exactly the fingerprint formula of the pre-refactor
        ``EvaluationRunner._disk_key``, so existing cache directories
        stay warm (enforced by the parity tests).
        """
        from repro.evaluation.cache import code_version, fingerprint

        return fingerprint(
            {
                "code": code_version(),
                "bench": bench,
                "sources": {
                    scale: benchmark_fingerprint(bench, scale)
                    for scale in scales
                },
                **extra,
            }
        )

    def load(self, kind: str, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` on a miss (no cache attached
        counts as a miss)."""
        payload = None
        if self.cache is not None:
            payload = self.cache.load(kind, key)
        with self._lock:
            if payload is None:
                self._misses[kind] = self._misses.get(kind, 0) + 1
            else:
                self._hits[kind] = self._hits.get(kind, 0) + 1
        return payload

    def store(self, kind: str, key: str, payload: dict) -> bool:
        """Persist one artifact; returns whether it was written (False
        when the store is memory-only)."""
        if self.cache is None:
            return False
        self.cache.store(kind, key, payload)
        with self._lock:
            self._stores[kind] = self._stores.get(kind, 0) + 1
        return True

    # -- schedule columns --------------------------------------------------

    def schedule_memo(self) -> ScheduleMemo:
        """A fresh schedule-column namespace (one per executor)."""
        memo = ScheduleMemo()
        with self._lock:
            self._memos.append(memo)
        return memo

    # -- accounting --------------------------------------------------------

    @property
    def warm_hits(self) -> int:
        """Total stage-artifact loads served from the store."""
        with self._lock:
            return sum(self._hits.values())

    def counters(self) -> Dict[str, Any]:
        """One snapshot of everything this store has served.

        ``artifacts`` mirrors the per-kind hit/miss/store tallies (the
        store's own view; the attached cache keeps its own identical
        disk-traffic counters), ``schedules`` aggregates the occupancy
        of every handed-out schedule memo.
        """
        with self._lock:
            kinds = set(self._hits) | set(self._misses) | set(self._stores)
            machines = sum(len(memo) for memo in self._memos)
            columns = sum(
                len(column)
                for memo in self._memos
                for column in memo.values()
            )
            return {
                "artifacts": {
                    kind: {
                        "hits": self._hits.get(kind, 0),
                        "misses": self._misses.get(kind, 0),
                        "stores": self._stores.get(kind, 0),
                    }
                    for kind in sorted(kinds)
                },
                "schedules": {
                    "memos": len(self._memos),
                    "machines": machines,
                    "columns": columns,
                },
            }
