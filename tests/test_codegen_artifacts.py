"""Content-addressed codegen artifacts across interpreter lifetimes.

The superblock tiers content-address their generated source/bytecode
into an :class:`~repro.artifacts.ArtifactStore` (kind ``"codegen"``),
so a warm process -- a suite re-run, a ``repro serve`` resubmission, a
``--jobs`` sibling worker -- instantiates stored code instead of
re-deriving it.  These tests pin the cache protocol: cold miss+store,
warm hit with *zero* decode or codegen work, key sensitivity (hook
flags and IR content in, machine shape out), and graceful fallback on
corrupt payloads.
"""

import pytest

from repro.artifacts import ArtifactStore
from repro.frontend import compile_source
from repro.obs.metrics import REGISTRY, metrics_delta
from repro.runtime import Interpreter, run_module
from repro.runtime.codegen import CODEGEN_KIND, artifact_key
from repro.runtime.machine import MachineConfig

SRC = """
int f(int n) { return n * 2 + 1; }
void main() {
    int i;
    int total = 0;
    for (i = 0; i < 20; i++) { total = total + f(i); }
    print(total);
}
"""


def _delta(run):
    before = REGISTRY.snapshot()
    run()
    return metrics_delta(before, REGISTRY.snapshot())["counters"]


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


def _codegen_row(store):
    return store.counters()["artifacts"].get(CODEGEN_KIND, {})


class TestColdAndWarm:
    def test_cold_run_misses_then_stores(self, store):
        module = compile_source(SRC)
        interp = Interpreter(module, backend="superblock", codegen_cache=store)
        counters = _delta(interp.run)
        # Two functions, each compiled once: miss + store, no hits yet.
        assert counters["interp.codegen.cache.miss"] == 2
        assert "interp.codegen.cache.hit" not in counters
        row = _codegen_row(store)
        assert row["misses"] == 2
        assert row["stores"] == 2

    def test_warm_run_skips_decode_and_codegen(self, store):
        oracle = run_module(compile_source(SRC), backend="tree")
        cold = Interpreter(
            compile_source(SRC), backend="superblock", codegen_cache=store
        )
        assert cold.run().to_dict() == oracle.to_dict()
        warm = Interpreter(
            compile_source(SRC), backend="superblock", codegen_cache=store
        )
        counters = _delta(lambda: warm.run())
        assert counters["interp.codegen.cache.hit"] == 2
        assert "interp.codegen.cache.miss" not in counters
        # The warm path rebuilds nothing: no codegen, no decode.
        assert "interp.codegen.functions" not in counters
        assert warm._decoded == {}
        assert warm.run().to_dict() == oracle.to_dict()
        # The replayed source is the stored source, byte for byte.
        for key, sfunc in warm._superblocks.items():
            assert sfunc.source == cold._superblocks[key].source

    def test_hooked_tier_warm_hit_preserves_instrumentation(self, store):
        def hooked_run(cache):
            interp = Interpreter(compile_source(SRC), codegen_cache=cache)
            interp.count_loads = True
            entries = []
            interp.on_block_entry = (
                lambda frame, prev, block: entries.append(block.name)
            )
            result = interp.run()
            return result.to_dict(), interp.load_count, entries

        cold = hooked_run(store)
        before = _codegen_row(store).get("hits", 0)
        warm = hooked_run(store)
        assert warm == cold
        assert _codegen_row(store)["hits"] > before


class TestKeying:
    def test_key_excludes_machine_shape(self):
        module = compile_source(SRC)
        func = module.functions["main"]
        small = Interpreter(module, machine=MachineConfig(cores=2))
        large = Interpreter(module, machine=MachineConfig(cores=16))
        assert artifact_key(small, func, False, False) == artifact_key(
            large, func, False, False
        )

    def test_key_covers_hook_flags(self):
        module = compile_source(SRC)
        func = module.functions["main"]
        interp = Interpreter(module)
        keys = {
            artifact_key(interp, func, hooked, counts)
            for hooked, counts in (
                (False, False), (True, False), (True, True),
            )
        }
        assert len(keys) == 3

    def test_key_covers_function_content(self):
        left = Interpreter(compile_source(SRC))
        right = Interpreter(
            compile_source(SRC.replace("n * 2 + 1", "n * 3 + 1"))
        )
        assert artifact_key(
            left, left.module.functions["f"], False, False
        ) != artifact_key(right, right.module.functions["f"], False, False)

    def test_key_covers_block_profile(self):
        module = compile_source(SRC)
        func = module.functions["main"]
        plain = Interpreter(module)
        guided = Interpreter(
            module, block_profile={("main", func.entry.name): 100}
        )
        assert artifact_key(plain, func, False, False) != artifact_key(
            guided, func, False, False
        )


class TestCorruptPayload:
    def test_garbage_payload_falls_back_to_compile(self, store):
        module = compile_source(SRC)
        interp = Interpreter(module, backend="superblock", codegen_cache=store)
        for name in ("main", "f"):
            key = artifact_key(
                interp, module.functions[name], False, False
            )
            store.store(CODEGEN_KIND, key, {"garbage": True})
        oracle = run_module(compile_source(SRC), backend="tree")
        counters = _delta(lambda: interp.run())
        assert interp.run().to_dict() == oracle.to_dict()
        # The poisoned payloads are read but never trusted: the build
        # path recompiles (and re-stores) both functions.
        assert counters["interp.codegen.cache.miss"] == 2
        assert counters["interp.codegen.functions"] == 2
