"""Tests for the parallel executor and its schedule reconstruction."""

import pytest

from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.core.loopinfo import ParallelizedLoop
from repro.frontend import compile_source
from repro.runtime import run_module
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import (
    CTRL_DEP,
    InvocationTrace,
    IterationTrace,
    ParallelExecutor,
    schedule_invocation,
)


def transform(source, cores=4, prefix="for", options=None):
    module = compile_source(source)
    forest = find_loops(module.functions["main"])
    loop_ids = [
        l.id for l in forest if l.parent is None and l.header.startswith(prefix)
    ]
    machine = MachineConfig(cores=cores)
    transformed, infos = parallelize_module(module, loop_ids, machine, options)
    return module, transformed, infos, machine


DOALL = """
int a[64];
int chk;
void main() {
    int i;
    for (i = 0; i < 64; i++) {
        int w = (i * 2654435761) % 97;
        a[i] = w + i;
    }
    for (i = 0; i < 64; i++) { chk = (chk + a[i]) % 10007; }
    print(chk);
}
"""

SEQUENTIAL_SEGMENT = """
int total;
void main() {
    int i;
    for (i = 0; i < 40; i++) {
        int k = 0;
        int f = 0;
        while (k < 150) { f = f + (k ^ i); k++; }
        total = total + (f & 31);
    }
    print(total);
}
"""


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("source", [DOALL, SEQUENTIAL_SEGMENT])
    def test_output_identical(self, source):
        module, transformed, infos, machine = transform(source)
        baseline = run_module(module)
        executor = ParallelExecutor(transformed, infos, machine)
        result = executor.execute()
        assert result.output == baseline.output

    def test_memory_state_identical(self):
        module, transformed, infos, machine = transform(DOALL)
        interp_seq = run_module(module)
        executor = ParallelExecutor(transformed, infos, machine)
        executor.execute()
        seq_executor_memory = {
            k: v
            for k, v in executor.memory.items()
            if not k.startswith("__helix")
        }
        from repro.runtime.interpreter import Interpreter

        base = Interpreter(module)
        base.run()
        assert seq_executor_memory == {
            k: v for k, v in base.memory.items()
        }


class TestSpeedups:
    def test_doall_speedup_scales_with_cores(self):
        source = SEQUENTIAL_SEGMENT
        speedups = {}
        for cores in (2, 4, 6):
            module, transformed, infos, machine = transform(source, cores)
            baseline = run_module(module)
            result = ParallelExecutor(transformed, infos, machine).execute()
            speedups[cores] = baseline.cycles / result.cycles
        assert speedups[2] > 1.3
        assert speedups[4] > speedups[2]
        assert speedups[6] >= speedups[4] * 0.9

    def test_parallel_never_free(self):
        module, transformed, infos, machine = transform(DOALL)
        baseline = run_module(module)
        result = ParallelExecutor(transformed, infos, machine).execute()
        assert result.cycles > baseline.cycles / machine.cores

    def test_loop_stats_populated(self):
        module, transformed, infos, machine = transform(SEQUENTIAL_SEGMENT)
        result = ParallelExecutor(transformed, infos, machine).execute()
        stats = result.loop_stats[infos[0].loop_id]
        assert stats.invocations == 1
        assert stats.iterations == 41  # 40 iterations + exiting entry
        assert stats.signals > 0
        assert stats.sequential_cycles > stats.parallel_cycles

    def test_rerun_resets_invocation_state(self):
        # Regression: run() used to leave _inv_info/_inv_frame from the
        # previous run, so a re-run could misattribute its first
        # invocation.  Two runs of one executor must agree exactly.
        module, transformed, infos, machine = transform(SEQUENTIAL_SEGMENT)
        executor = ParallelExecutor(transformed, infos, machine)
        first = executor.execute()
        second = executor.execute()
        assert second.result.output == first.result.output
        assert second.result.cycles == first.result.cycles
        assert second.loop_stats == first.loop_stats
        assert len(second.traces) == len(first.traces)
        for a, b in zip(first.traces, second.traces):
            assert a.to_dict() == b.to_dict()


class TestReplay:
    def test_replay_matches_direct_execution(self):
        module, transformed, infos, _ = transform(SEQUENTIAL_SEGMENT, cores=6)
        machine2 = MachineConfig(cores=2)
        executor6 = ParallelExecutor(
            transformed, infos, MachineConfig(cores=6)
        )
        executor6.execute()
        replayed = executor6.replay(machine2)

        executor2 = ParallelExecutor(transformed, infos, machine2)
        direct = executor2.execute()
        assert replayed.cycles == direct.cycles

    def test_replay_prefetch_modes(self):
        module, transformed, infos, machine = transform(SEQUENTIAL_SEGMENT, 6)
        executor = ParallelExecutor(transformed, infos, machine)
        executor.execute()
        cycles = {}
        for mode in PrefetchMode:
            replay = executor.replay(machine.with_prefetch(mode))
            cycles[mode] = replay.cycles
        assert cycles[PrefetchMode.IDEAL] <= cycles[PrefetchMode.HELIX]
        assert cycles[PrefetchMode.HELIX] <= cycles[PrefetchMode.NONE]

    def test_replay_requires_traces(self):
        module, transformed, infos, machine = transform(DOALL)
        executor = ParallelExecutor(
            transformed, infos, machine, record_traces=False
        )
        executor.execute()
        from repro.runtime.interpreter import RuntimeFault

        with pytest.raises(RuntimeFault):
            executor.replay(machine)

    def test_replay_many_duplicate_and_baseline_machines(self):
        """A sweep list may repeat machines and include the baseline
        itself; every entry stays field-exact with a solo ``replay``."""
        module, transformed, infos, machine = transform(
            SEQUENTIAL_SEGMENT, cores=6
        )
        executor = ParallelExecutor(transformed, infos, machine)
        direct = executor.execute()
        probe = MachineConfig(cores=2)
        sweep = [probe, machine, probe]
        runs = executor.replay_many(sweep)
        assert [r.machine for r in runs] == sweep
        for swept, run in zip(sweep, runs):
            solo = executor.replay(swept)
            assert run.result.cycles == solo.result.cycles
            assert run.result.output == solo.result.output
            assert run.loop_stats == solo.loop_stats
        # Duplicates agree with each other, the baseline entry with the
        # recorded execution.
        assert runs[0].result.cycles == runs[2].result.cycles
        assert runs[1].result.cycles == direct.cycles
        assert runs[1].result.output == direct.output

    def test_replay_many_zero_trace_executor(self):
        """A run whose parallelized loop never executed records no
        traces; replaying it is the recorded run under every machine."""
        source = """
        int acc;
        int n;
        void main() {
            int i;
            if (n > 0) {
                for (i = 0; i < n; i++) { acc = acc + i; }
            }
            print(acc);
        }
        """
        module, transformed, infos, machine = transform(source)
        assert infos  # the loop was parallelized...
        executor = ParallelExecutor(transformed, infos, machine)
        direct = executor.execute()
        assert executor.traces == []  # ...but never entered
        probe = MachineConfig(cores=2)
        runs = executor.replay_many([probe, machine])
        for run in runs:
            assert run.result.cycles == direct.cycles
            assert run.result.output == direct.output
            assert run.loop_stats == {}
        solo = executor.replay(probe)
        assert solo.result.cycles == direct.cycles

    def test_replay_many_results_share_output_and_traces(self):
        """The sweep shares one output list and one trace list across
        results instead of copying them per machine."""
        module, transformed, infos, machine = transform(SEQUENTIAL_SEGMENT)
        executor = ParallelExecutor(transformed, infos, machine)
        executor.execute()
        runs = executor.replay_many(
            [MachineConfig(cores=2), MachineConfig(cores=3), machine]
        )
        first = runs[0]
        for run in runs[1:]:
            assert run.result.output is first.result.output
            assert run.traces is first.traces


def make_loop_info(counted=False, helper_order=()):
    return ParallelizedLoop(
        loop_id=("f", "L"),
        func_name="f",
        seq_header="L",
        guard_block="g",
        par_preheader="pp",
        par_header="ph",
        par_latch="lt",
        counted=counted,
        helper_order=list(helper_order),
    )


def iteration(start, events, end):
    trace = IterationTrace(start_cycles=start, end_cycles=end)
    trace.events = events
    return trace


class TestScheduleInvocation:
    """Unit tests of the timing reconstruction on synthetic traces."""

    def machine(self, cores=2, mode=PrefetchMode.NONE):
        return MachineConfig(cores=cores, prefetch_mode=mode)

    def test_empty_invocation_costs_sequential_span(self):
        # Regression: zero-iteration invocations used to be charged the
        # full thread-configuration cost; they cost their sequential
        # span (the loop body never ran, nothing was configured).
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=100, end_cycles=130
        )
        result = schedule_invocation(trace, make_loop_info(), self.machine())
        assert result.sequential_cycles == 30
        assert result.parallel_cycles == 30

    def test_empty_invocation_never_charged_configuration(self):
        machine = self.machine(cores=6)
        trace = InvocationTrace(loop_id=("f", "L"), start_cycles=0, end_cycles=5)
        result = schedule_invocation(trace, make_loop_info(), machine)
        conf = machine.config_cycles_per_thread * (machine.cores - 1)
        assert result.parallel_cycles == 5 < conf

    def test_counted_doall_divides_by_cores(self):
        # 8 iterations of 100 cycles, no sync events, 4 cores.
        iterations = [
            iteration(i * 100, [], (i + 1) * 100) for i in range(8)
        ]
        trace = InvocationTrace(
            loop_id=("f", "L"),
            start_cycles=0,
            end_cycles=800,
            iterations=iterations,
        )
        machine = self.machine(cores=4)
        result = schedule_invocation(trace, make_loop_info(counted=True), machine)
        conf = machine.config_cycles_per_thread * 3
        drain = machine.signal_latency + 3
        assert result.parallel_cycles == conf + 200 + drain

    def test_non_counted_chains_on_control_signal(self):
        # Tiny iterations: the start chain dominates.
        iterations = []
        for i in range(4):
            start = i * 10
            iterations.append(
                iteration(start, [("n", CTRL_DEP, start + 2)], start + 10)
            )
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=40,
            iterations=iterations,
        )
        machine = self.machine(cores=4)
        result = schedule_invocation(trace, make_loop_info(counted=False), machine)
        # Each hand-off pays the full signal latency.
        assert result.parallel_cycles >= 3 * machine.signal_latency

    def test_wait_blocks_until_signal(self):
        # Iteration 0 signals dep 0 at t=90; iteration 1 waits at its t=10.
        it0 = iteration(0, [("s", 0, 90)], 100)
        it1 = iteration(100, [("w", 0, 110)], 200)
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=200,
            iterations=[it0, it1],
        )
        machine = self.machine(cores=2)
        result = schedule_invocation(trace, make_loop_info(counted=True), machine)
        # Iteration 1 on core 1 reaches its wait at conf+10 but the
        # signal lands at conf+90; completion = signal + pull latency.
        conf = machine.config_cycles_per_thread
        it1_end = conf + 90 + machine.signal_latency + 90
        assert result.parallel_cycles == int(
            it1_end + machine.signal_latency + 1
        )
        assert result.wait_stall_cycles > 0

    def test_first_iteration_never_waits(self):
        it0 = iteration(0, [("w", 0, 50)], 100)
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=100,
            iterations=[it0],
        )
        result = schedule_invocation(
            trace, make_loop_info(counted=True), self.machine()
        )
        assert result.wait_stall_cycles == 0

    def test_transfer_charged_only_when_produced(self):
        machine = self.machine(cores=2)
        # Iteration 0 produces dep 0; iteration 1 consumes -> one transfer.
        it0 = iteration(0, [("p", 0, 40)], 100)
        it1 = iteration(100, [("x", 0, 150)], 200)
        it1.words[0] = 1
        # Iteration 2 consumes but iteration 1 produced nothing.
        it2 = iteration(200, [("x", 0, 250)], 300)
        it2.words[0] = 1
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=300,
            iterations=[it0, it1, it2],
        )
        result = schedule_invocation(trace, make_loop_info(counted=True), machine)
        assert result.transfer_words == 1

    def test_ideal_prefetch_cheapest(self):
        def run(mode):
            iterations = []
            for i in range(6):
                start = i * 100
                iterations.append(
                    iteration(
                        start,
                        [("w", 0, start + 60), ("s", 0, start + 70)],
                        start + 100,
                    )
                )
            trace = InvocationTrace(
                loop_id=("f", "L"), start_cycles=0, end_cycles=600,
                iterations=iterations,
            )
            machine = MachineConfig(cores=2, prefetch_mode=mode)
            info = make_loop_info(counted=True, helper_order=[0])
            return schedule_invocation(trace, info, machine).parallel_cycles

        # Ordering: ideal <= helix <= none.
        assert run(PrefetchMode.IDEAL) <= run(PrefetchMode.HELIX)
        assert run(PrefetchMode.HELIX) <= run(PrefetchMode.NONE)

    def test_segment_cycles_measured(self):
        it0 = iteration(0, [("w", 0, 10), ("s", 0, 60)], 100)
        it1 = iteration(100, [("w", 0, 110), ("s", 0, 160)], 200)
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=200,
            iterations=[it0, it1],
        )
        result = schedule_invocation(
            trace, make_loop_info(counted=True), self.machine()
        )
        assert result.segment_cycles >= 100  # two ~50-cycle segments


class TestMemoryConsistency:
    def test_weak_ordering_costs_barriers(self):
        """Section 2.3: without TSO, every sync op pays a barrier."""
        import dataclasses

        module, transformed, infos, machine = transform(SEQUENTIAL_SEGMENT, 6)
        tso = ParallelExecutor(transformed, infos, machine).execute()
        weak_machine = dataclasses.replace(machine, total_store_ordering=False)
        weak = ParallelExecutor(transformed, infos, weak_machine).execute()
        assert weak.result.output == tso.result.output
        assert weak.cycles > tso.cycles


class TestHelperPipelining:
    def test_helper_serializes_prefetches(self):
        """One helper prefetch at a time: with two deps signalled
        back-to-back, the second prefetch completes a pull-latency after
        the first, so only the first wait gets the fast path."""
        machine = MachineConfig(cores=2, prefetch_mode=PrefetchMode.HELIX)
        info = make_loop_info(counted=True, helper_order=[0, 1])
        latency = machine.signal_latency
        fast = machine.prefetched_signal_latency

        iterations = []
        body = 3 * latency  # enough slack for one prefetch, not two
        for i in range(4):
            start = i * body
            iterations.append(
                iteration(
                    start,
                    [
                        ("w", 0, start + body - 40),
                        ("s", 0, start + body - 35),
                        ("w", 1, start + body - 20),
                        ("s", 1, start + body - 15),
                    ],
                    start + body,
                )
            )
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=4 * body,
            iterations=iterations,
        )
        helix = schedule_invocation(trace, info, machine)
        ideal = schedule_invocation(
            trace, info, machine.with_prefetch(PrefetchMode.IDEAL)
        )
        none = schedule_invocation(
            trace, info, machine.with_prefetch(PrefetchMode.NONE)
        )
        assert none.parallel_cycles >= helix.parallel_cycles
        assert helix.parallel_cycles >= ideal.parallel_cycles

    def test_helper_state_carries_across_iterations_on_a_core(self):
        """The helper of a core serves iteration i, then i+N: its busy
        time must persist (helper_free), so dense signal traffic cannot
        be prefetched infinitely fast."""
        machine = MachineConfig(cores=1, prefetch_mode=PrefetchMode.HELIX)
        info = make_loop_info(counted=True, helper_order=[0])
        iterations = []
        for i in range(6):
            start = i * 50
            iterations.append(
                iteration(start, [("w", 0, start + 10), ("s", 0, start + 20)], start + 50)
            )
        trace = InvocationTrace(
            loop_id=("f", "L"), start_cycles=0, end_cycles=300,
            iterations=iterations,
        )
        result = schedule_invocation(trace, info, machine)
        # Single core: everything serial, finishing after all the work.
        assert result.parallel_cycles >= 300
