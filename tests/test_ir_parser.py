"""Tests for the textual IR parser (print -> parse round trips)."""

import pytest

from repro.frontend import compile_source
from repro.ir import module_to_str
from repro.ir.parser import IRParseError, parse_module
from repro.runtime import run_module


def roundtrip(source):
    module = compile_source(source)
    text = module_to_str(module)
    reparsed = parse_module(text)
    return module, reparsed


class TestRoundTrip:
    def test_simple_program(self):
        module, reparsed = roundtrip(
            """
            int g = 3;
            void main() { print(g + 4); }
            """
        )
        assert run_module(reparsed).output == run_module(module).output

    def test_control_flow(self):
        module, reparsed = roundtrip(
            """
            void main() {
                int i;
                int s = 0;
                for (i = 0; i < 7; i++) {
                    if (i % 2 == 0) { s += i; } else { s -= 1; }
                }
                print(s);
            }
            """
        )
        assert run_module(reparsed).output == run_module(module).output

    def test_functions_and_calls(self):
        module, reparsed = roundtrip(
            """
            int add(int a, int b) { return a + b; }
            void main() { print(add(2, 3)); }
            """
        )
        assert run_module(reparsed).output == ["5"]

    def test_arrays_and_pointers(self):
        module, reparsed = roundtrip(
            """
            int data[8];
            void main() {
                int *p = &data[2];
                *p = 11;
                p[1] = data[2] + 1;
                print(data[3]);
            }
            """
        )
        assert run_module(reparsed).output == ["12"]

    def test_local_arrays(self):
        module, reparsed = roundtrip(
            """
            void main() {
                int buf[4];
                buf[0] = 9;
                print(buf[0]);
            }
            """
        )
        assert run_module(reparsed).output == ["9"]

    def test_float_arithmetic(self):
        module, reparsed = roundtrip(
            """
            void main() {
                float f = 0.5;
                print(f * 4.0 + 1.0);
            }
            """
        )
        assert run_module(reparsed).output == ["3"]

    def test_global_initializers(self):
        module, reparsed = roundtrip(
            "int a[3] = {4, 5, 6};\nvoid main() { print(a[1]); }"
        )
        assert run_module(reparsed).output == ["5"]

    def test_transformed_module_roundtrips(self):
        """Even HELIX output (wait/signal/next_iter/xfer) round-trips."""
        from repro.analysis.loops import find_loops
        from repro.core import parallelize_module

        module = compile_source(
            """
            int total;
            void main() {
                int i;
                for (i = 0; i < 12; i++) { total = total + i * 3 % 5; }
                print(total);
            }
            """
        )
        loop = next(iter(find_loops(module.functions["main"])))
        transformed, _ = parallelize_module(module, [loop.id])
        text = module_to_str(transformed)
        reparsed = parse_module(text)
        assert run_module(reparsed).output == run_module(module).output


class TestHandWrittenIR:
    def test_author_ir_directly(self):
        text = """
        module hand
        global int @g[1]

        func void main() {
        entry:
          %t0 = add 2, 3
          storeg @g, 0, %t0
          %t1 = loadg @g, 0
          print %t1
          ret
        }
        """
        module = parse_module(text)
        assert run_module(module).output == ["5"]

    def test_branching_ir(self):
        text = """
        module hand

        func void main() {
        entry:
          %t0 = lt 1, 2
          cbr %t0 -> yes, no
        yes:
          print 1
          br -> done
        no:
          print 0
          br -> done
        done:
          ret
        }
        """
        module = parse_module(text)
        assert run_module(module).output == ["1"]


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRParseError):
            parse_module("module m\nfunc void main() {\nentry:\n  frobnicate\n}")

    def test_unknown_global(self):
        with pytest.raises(IRParseError):
            parse_module(
                "module m\nfunc void main() {\nentry:\n  %t0 = loadg @ghost, 0\n  ret\n}"
            )

    def test_instruction_outside_block(self):
        with pytest.raises(IRParseError):
            parse_module("module m\nfunc void main() {\n  ret\n}")

    def test_empty_input(self):
        with pytest.raises(IRParseError):
            parse_module("")
