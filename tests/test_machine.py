"""Tests for the machine description."""

import pytest

from repro.ir.instructions import Opcode
from repro.runtime.machine import CostModel, MachineConfig, PrefetchMode


class TestMachineConfig:
    def test_defaults_model_the_testbed(self):
        machine = MachineConfig()
        assert machine.cores == 6
        assert machine.signal_latency == 110
        assert machine.prefetched_signal_latency == 4
        assert machine.word_transfer_cycles == 110
        assert machine.smt

    def test_total_threads_is_2n_with_smt(self):
        # One main + N-1 parallel + N helper threads (paper Section 2).
        assert MachineConfig(cores=6).total_threads == 12
        assert MachineConfig(cores=4, smt=False).total_threads == 4

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            MachineConfig(cores=0)

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError):
            MachineConfig(signal_latency=2, prefetched_signal_latency=4)

    def test_with_cores_copy(self):
        base = MachineConfig(cores=6)
        small = base.with_cores(2)
        assert small.cores == 2 and base.cores == 6
        assert small.signal_latency == base.signal_latency

    def test_with_prefetch_copy(self):
        base = MachineConfig()
        ideal = base.with_prefetch(PrefetchMode.IDEAL)
        assert ideal.prefetch_mode is PrefetchMode.IDEAL
        assert base.prefetch_mode is PrefetchMode.HELIX

    def test_no_smt_disables_prefetching(self):
        machine = MachineConfig(smt=False, prefetch_mode=PrefetchMode.HELIX)
        assert machine.effective_prefetch_mode is PrefetchMode.NONE


class TestCostModel:
    def test_every_opcode_priced(self):
        model = CostModel()
        for opcode in Opcode:
            assert model.cycles(opcode) > 0

    def test_float_surcharge_on_arithmetic(self):
        model = CostModel()
        assert model.cycles(Opcode.ADD, is_float=True) > model.cycles(Opcode.ADD)
        assert model.cycles(Opcode.MUL, is_float=True) > model.cycles(Opcode.MUL)

    def test_no_float_surcharge_on_moves(self):
        model = CostModel()
        assert model.cycles(Opcode.MOV, is_float=True) == model.cycles(Opcode.MOV)

    def test_division_expensive(self):
        model = CostModel()
        assert model.cycles(Opcode.DIV) > model.cycles(Opcode.MUL)
