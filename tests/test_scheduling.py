"""Tests for Step 5 scheduling, Figure 6 balancing, and helper ordering."""

from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.loops import find_loops
from repro.analysis.pointer import andersen_pointer_analysis
from repro.core.scheduling import (
    balance_loop,
    build_block_dag,
    helper_wait_order,
    schedule_block,
    schedule_loop,
)
from repro.core.segments import insert_synchronization
from repro.core.signals import optimize_signals
from repro.frontend import compile_source
from repro.ir import Opcode
from repro.runtime import run_module
from repro.runtime.machine import MachineConfig


def prepare(source, optimize=True):
    module = compile_source(source)
    func = module.functions["main"]
    loop = next(iter(find_loops(func)))
    deps = DependenceAnalysis(module).loop_dependences(func, loop)
    syncs = insert_synchronization(func, loop, deps)
    if optimize:
        optimize_signals(func, loop, syncs)
    points_to = andersen_pointer_analysis(module)
    return module, func, loop, syncs, points_to


SEGMENT_AT_TOP = """
int total;
void main() {
    int i;
    for (i = 0; i < 8; i++) {
        total = total + 1 + i % 3;
        int w = i * i;
        w = w * 3 + 7;
        w = w ^ (w >> 2);
        print(w);
    }
}
"""


class TestBlockDag:
    def test_register_raw_edges(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        block = func.blocks[
            next(n for n in loop.blocks if n.startswith("body"))
        ]
        nodes = build_block_dag(block, "main", pts, syncs)
        # Every node's preds precede it in the original order (it's a DAG
        # built over a legal sequence).
        for node in nodes:
            for pred in node.preds:
                assert pred < node.index

    def test_terminator_depends_on_all(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        block = func.blocks[
            next(n for n in loop.blocks if n.startswith("body"))
        ]
        nodes = build_block_dag(block, "main", pts, syncs)
        term = nodes[-1]
        assert term.instr.is_terminator
        assert len(term.preds) == len(nodes) - 1


class TestScheduleBlock:
    def test_schedule_is_permutation(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        for name in loop.blocks:
            block = func.blocks[name]
            before = {i.uid for i in block.instructions}
            schedule_block(block, "main", pts, syncs)
            after = {i.uid for i in block.instructions}
            assert before == after

    def test_semantics_preserved(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        baseline = run_module(compile_source(SEGMENT_AT_TOP)).output
        schedule_loop(func, loop, pts, syncs)
        assert run_module(module).output == baseline

    def test_independent_code_moves_after_signal(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        schedule_loop(func, loop, pts, syncs)
        # In the block holding the segment, the signal should come before
        # the independent `w` computation chain.
        target = None
        for name in loop.blocks:
            instrs = func.blocks[name].instructions
            if any(i.opcode is Opcode.SIGNAL for i in instrs):
                sig_pos = max(
                    k for k, i in enumerate(instrs)
                    if i.opcode is Opcode.SIGNAL
                )
                movable_after = [
                    i for i in instrs[sig_pos:]
                    if i.opcode in (Opcode.MUL, Opcode.XOR, Opcode.SHR)
                ]
                if movable_after:
                    target = name
        assert target is not None, "no independent code ended up after a signal"

    def test_wait_stays_before_endpoints(self):
        module, func, loop, syncs, pts = prepare(SEGMENT_AT_TOP)
        schedule_loop(func, loop, pts, syncs)
        for sync in syncs:
            if not sync.synchronized:
                continue
            endpoint_uids = {e.uid for e in sync.dep.endpoints()}
            for name in loop.blocks:
                seen_wait = False
                for instr in func.blocks[name].instructions:
                    if (
                        instr.opcode is Opcode.WAIT
                        and instr.dep_id == sync.dep.index
                    ):
                        seen_wait = True
                    if instr.uid in endpoint_uids:
                        assert seen_wait


class TestBalancing:
    TWO_SEGMENTS = """
    int a;
    int b;
    void main() {
        int i;
        for (i = 0; i < 8; i++) {
            a = a + i;
            int w1 = i * 3;
            int w2 = w1 ^ 5;
            int w3 = w2 + w1;
            int w4 = w3 * 2;
            print(w4);
            if (i % 2 == 0) {
                b = b + w4;
            }
        }
    }
    """

    def test_balancing_preserves_semantics(self):
        module, func, loop, syncs, pts = prepare(self.TWO_SEGMENTS)
        schedule_loop(func, loop, pts, syncs)
        baseline = run_module(compile_source(self.TWO_SEGMENTS)).output
        balance_loop(func, loop, pts, syncs, MachineConfig())
        assert run_module(module).output == baseline

    def test_balancing_is_idempotent_wrt_instruction_set(self):
        module, func, loop, syncs, pts = prepare(self.TWO_SEGMENTS)
        schedule_loop(func, loop, pts, syncs)
        before = sorted(i.uid for i in func.instructions())
        balance_loop(func, loop, pts, syncs, MachineConfig())
        after = sorted(i.uid for i in func.instructions())
        assert before == after


class TestHelperOrder:
    def test_order_covers_synchronized_deps(self):
        module, func, loop, syncs, pts = prepare(
            TestBalancing.TWO_SEGMENTS, optimize=True
        )
        order = helper_wait_order(func, loop, syncs)
        active = {s.dep.index for s in syncs if s.synchronized}
        assert set(order) == active
        assert len(order) == len(set(order))

    def test_order_follows_first_wait_position(self):
        module, func, loop, syncs, pts = prepare(
            TestBalancing.TWO_SEGMENTS, optimize=True
        )
        schedule_loop(func, loop, pts, syncs)
        order = helper_wait_order(func, loop, syncs)
        if len(order) >= 2:
            # The first dep in helper order must be waitable no later than
            # the second along the body's straight line.
            positions = {}
            pos = 0
            for name in sorted(loop.blocks):
                for instr in func.blocks[name].instructions:
                    if instr.opcode is Opcode.WAIT:
                        positions.setdefault(instr.dep_id, pos)
                    pos += 1
            assert positions[order[0]] <= positions[order[-1]]


class TestWaitOnlyBlocks:
    def test_movables_precede_wait_when_no_signal_in_block(self):
        """In a block that waits but signals only later (in a successor),
        independent code must not be pulled inside the segment."""
        source = """
        int best;
        int texture[64];
        void main() {
            int i;
            for (i = 0; i < 16; i++) {
                int t0 = texture[i % 64];
                int t1 = t0 * 3 + 1;
                int t2 = t1 ^ (t1 >> 2);
                if (t2 > best) {
                    best = t2;
                }
            }
        }
        """
        module, func, loop, syncs, pts = prepare(source)
        schedule_loop(func, loop, pts, syncs)
        for name in loop.blocks:
            instrs = func.blocks[name].instructions
            wait_positions = [
                k for k, i in enumerate(instrs) if i.opcode is Opcode.WAIT
            ]
            has_signal = any(
                i.opcode is Opcode.SIGNAL for i in instrs
            )
            if not wait_positions or has_signal:
                continue
            first_wait = min(wait_positions)
            # The independent texture-feature chain (mod/mul/shr/xor)
            # must be fully emitted before the wait, not inside the
            # segment that only closes in a successor block.
            chain_ops = {Opcode.MOD, Opcode.MUL, Opcode.SHR, Opcode.XOR}
            for instr in instrs[first_wait + 1:]:
                assert instr.opcode not in chain_ops, (
                    f"{instr} trapped inside the segment in {name}"
                )
