"""Structural tests: each benchmark models what its docstring claims.

These pin the *reason* each benchmark behaves like its SPEC counterpart --
if a future edit accidentally turns mcf's pointer chase into a DOALL loop,
these tests catch it even though speedups might still look plausible.
"""

import pytest

from repro import MachineConfig
from repro.analysis.dependence import DependenceAnalysis, DependenceKind
from repro.analysis.loops import find_loops
from repro.bench import compile_benchmark
from repro.core.selection import SelectionConfig, choose_loops
from repro.runtime import profile_module

_cache = {}


def selection_for(name):
    if name not in _cache:
        module = compile_benchmark(name, "train")
        profile = profile_module(module)
        config = SelectionConfig(machine=MachineConfig(cores=6), cores=6)
        _cache[name] = (module, profile, choose_loops(module, profile, config))
    return _cache[name]


def chosen_functions(name):
    _, _, selection = selection_for(name)
    return {lid[0] for lid in selection.chosen}


class TestArt:
    def test_f2_scan_is_the_star(self):
        module, profile, selection = selection_for("art")
        assert "scan_pass" in chosen_functions("art")

    def test_reset_nodes_has_two_dynamic_parents(self):
        module, profile, _ = selection_for("art")
        graph = profile.dynamic_nesting.graph
        reset_loops = [n for n in graph.nodes if n[0] == "reset_nodes"]
        assert reset_loops
        parents = {
            parent
            for loop in reset_loops
            for parent in graph.predecessors(loop)
        }
        # Called from main's init code and from the scan loop: the
        # dynamic loop nesting graph is not a tree (paper Figure 8).
        assert len(parents) >= 1

    def test_scan_loop_is_doall(self):
        module, _, selection = selection_for("art")
        # The chosen scan_pass loop (the F2 neuron scan) must be DOALL.
        lid = next(l for l in selection.chosen if l[0] == "scan_pass")
        func = module.functions["scan_pass"]
        loop = find_loops(func).by_header[lid[1]]
        deps = DependenceAnalysis(module).loop_dependences(func, loop)
        assert deps == []


class TestMcf:
    def test_tree_update_not_chosen(self):
        assert "update_tree" not in chosen_functions("mcf")

    def test_pointer_chase_is_carried(self):
        module, _, _ = selection_for("mcf")
        func = module.functions["update_tree"]
        loops = find_loops(func)
        chase = next(l for l in loops if l.header.startswith("while"))
        deps = DependenceAnalysis(module).loop_dependences(func, chase)
        # The u = parent[u] walk carries u between iterations.
        assert any(d.kind is DependenceKind.REGISTER for d in deps)


class TestBzip2:
    def test_histogram_rejected(self):
        module, profile, selection = selection_for("bzip2")
        hist_loops = [
            lid for lid in selection.chosen if lid[0] == "histogram"
        ]
        # The counting loop writes hist[data[i]]: serializing.
        func = module.functions["histogram"]
        counting = [
            l for l in find_loops(func)
            if any(
                i.opcode.value == "storeg" and i.args[0].name == "hist"
                for i in l.instructions()
            )
        ]
        analysis = DependenceAnalysis(module)
        carried = [
            l
            for l in counting
            if analysis.loop_dependences(func, l)
        ]
        assert carried, "histogram increments must be loop-carried"

    def test_key_computation_chosen(self):
        assert "compute_keys" in chosen_functions("bzip2")


class TestGap:
    def test_convolution_chosen_carry_rejected(self):
        chosen = chosen_functions("gap")
        assert "poly_mul" in chosen
        assert "carry_propagate" not in chosen
        assert "normalize" not in chosen

    def test_carry_is_cross_iteration(self):
        module, _, _ = selection_for("gap")
        func = module.functions["carry_propagate"]
        loop = next(iter(find_loops(func)))
        deps = DependenceAnalysis(module).loop_dependences(func, loop)
        assert any("res" in d.location for d in deps)


class TestTwolf:
    def test_cost_evaluation_chosen_not_move_loop(self):
        module, profile, selection = selection_for("twolf")
        chosen_headers = {lid for lid in selection.chosen if lid[0] == "main"}
        # The m-loop (RNG-carried, accept writes) must not be chosen; the
        # inner nets loop should be.
        graph = profile.dynamic_nesting
        for lid in chosen_headers:
            # Any chosen main loop must not be a root containing net_span
            # calls transitively... simplest check: the move loop is the
            # dynamic parent of the chosen cost loop.
            parents = list(graph.graph.predecessors(lid))
            if parents:
                assert all(p not in selection.chosen for p in parents)


class TestCrafty:
    def test_material_stays_sequential(self):
        assert "material" not in chosen_functions("crafty")

    def test_mobility_scan_parallelized(self):
        module, profile, selection = selection_for("crafty")
        # The chosen loop lives in main (the mobility scan).
        assert any(lid[0] == "main" for lid in selection.chosen)


class TestVortex:
    def test_inlining_triggered(self):
        """The obj_b dependence crosses touch_object: Step 5 inlines it."""
        from repro.core import parallelize_module

        module, profile, selection = selection_for("vortex")
        scan = [lid for lid in selection.chosen if lid[0] == "main"]
        assert scan
        transformed, infos = parallelize_module(
            module, scan, MachineConfig(cores=6)
        )
        assert any(info.inlined_calls > 0 for info in infos)


class TestParser:
    def test_linkage_pass_rejected(self):
        module, profile, selection = selection_for("parser")
        # The linkage chain (links feeds links) must stay sequential:
        # no chosen loop may carry it.
        func = module.functions["main"]
        forest = find_loops(func)
        analysis = DependenceAnalysis(module)
        for lid in selection.chosen:
            if lid[0] != "main":
                continue
            loop = forest.by_header[lid[1]]
            deps = analysis.loop_dependences(func, loop)
            for dep in deps:
                if dep.kind is DependenceKind.REGISTER:
                    assert "links" not in dep.location


class TestGzip:
    def test_candidate_loop_chosen_position_loop_not(self):
        module, profile, selection = selection_for("gzip")
        assert "longest_match" in chosen_functions("gzip")
        main_loops = [lid for lid in selection.chosen if lid[0] == "main"]
        # The outer position loop advances by the match length -> its
        # exit is data-dependent and its hash updates are carried.
        graph = profile.dynamic_nesting
        roots = {r for r in graph.roots() if r[0] == "main"}
        big_root = max(
            roots,
            key=lambda r: profile.loop(r).total_cycles,
            default=None,
        )
        assert big_root not in selection.chosen


class TestEquakeAmmp:
    def test_smvp_rows_doall(self):
        module, _, _ = selection_for("equake")
        func = module.functions["smvp"]
        outer = next(l for l in find_loops(func) if l.parent is None)
        deps = DependenceAnalysis(module).loop_dependences(func, outer)
        assert deps == []

    def test_ammp_forces_has_energy_segment(self):
        module, _, selection = selection_for("ammp")
        func = module.functions["forces"]
        outer = next(l for l in find_loops(func) if l.parent is None)
        deps = DependenceAnalysis(module).loop_dependences(func, outer)
        assert any("energy_acc" in d.location for d in deps)
        assert ("forces", outer.header) in set(selection.chosen)
