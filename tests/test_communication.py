"""Tests for Step 7: forwarding slots and transfer marks."""

from repro.analysis.dependence import DependenceAnalysis, DependenceKind
from repro.analysis.loops import find_loops
from repro.core.communication import (
    insert_communication,
    is_producer_mark,
    xfer_words,
)
from repro.core.segments import insert_synchronization
from repro.frontend import compile_source
from repro.ir import Opcode
from repro.runtime import run_module


def prepare(source):
    module = compile_source(source)
    func = module.functions["main"]
    loop = next(iter(find_loops(func)))
    deps = DependenceAnalysis(module).loop_dependences(func, loop)
    syncs = insert_synchronization(func, loop, deps)
    return module, func, loop, syncs


REGISTER_CARRY = """
int g;
void main() {
    int s = 1;
    int i;
    for (i = 0; i < 10; i++) {
        s = s * 3 % 1009;
    }
    g = s;
    print(s);
}
"""


class TestRegisterForwarding:
    def test_slot_created(self):
        module, func, loop, syncs = prepare(REGISTER_CARRY)
        insert_communication(module, func, loop, syncs)
        slots = [
            name for name, sym in module.globals.items() if sym.synthetic
        ]
        assert any("slot" in name for name in slots)

    def test_producer_store_after_def(self):
        module, func, loop, syncs = prepare(REGISTER_CARRY)
        insert_communication(module, func, loop, syncs)
        reg_dep = next(
            s for s in syncs if s.dep.kind is DependenceKind.REGISTER
        )
        for name in loop.blocks:
            instrs = func.blocks[name].instructions
            for pos, instr in enumerate(instrs):
                if instr.uid in {e.uid for e in reg_dep.dep.sources}:
                    following = instrs[pos + 1: pos + 3]
                    assert any(
                        f.opcode is Opcode.STOREG and f.args[0].synthetic
                        for f in following
                    )

    def test_marks_paired(self):
        module, func, loop, syncs = prepare(REGISTER_CARRY)
        insert_communication(module, func, loop, syncs)
        marks = [
            i for i in func.instructions() if i.opcode is Opcode.XFER
        ]
        producers = [m for m in marks if is_producer_mark(m)]
        consumers = [m for m in marks if not is_producer_mark(m)]
        assert producers and consumers
        assert all(xfer_words(m) == 1 for m in marks)

    def test_semantics_inert(self):
        module, func, loop, syncs = prepare(REGISTER_CARRY)
        baseline = run_module(compile_source(REGISTER_CARRY)).output
        insert_communication(module, func, loop, syncs)
        assert run_module(module).output == baseline


class TestMemoryForwarding:
    MEMORY_CARRY = """
    int total;
    void main() {
        int i;
        for (i = 0; i < 10; i++) {
            total = total + i * i;
        }
        print(total);
    }
    """

    def test_memory_raw_gets_marks_but_no_slot(self):
        module, func, loop, syncs = prepare(self.MEMORY_CARRY)
        before_globals = set(module.globals)
        insert_communication(module, func, loop, syncs)
        marks = [i for i in func.instructions() if i.opcode is Opcode.XFER]
        assert marks
        # Memory values already live in shared memory: no new slot.
        new_globals = set(module.globals) - before_globals
        assert not new_globals

    def test_waw_deps_carry_no_data(self):
        source = """
        int flags[4];
        int sink;
        void main() {
            int i;
            for (i = 0; i < 12; i++) {
                flags[0] = i;
            }
            sink = flags[0];
            print(sink);
        }
        """
        module, func, loop, syncs = prepare(source)
        insert_communication(module, func, loop, syncs)
        waw = [s for s in syncs if s.dep.kind is DependenceKind.WAW]
        assert waw
        marks = [i for i in func.instructions() if i.opcode is Opcode.XFER]
        waw_ids = {s.dep.index for s in waw}
        assert not any(m.dep_id in waw_ids for m in marks)
