"""Tests for BasicBlock, Function, Module and their cloning."""

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    Module,
    Opcode,
)
from repro.ir.function import clone_function
from repro.ir.module import clone_module
from repro.ir.operands import Const, VReg
from repro.ir.types import Type


def mov(dest, value):
    return Instruction(Opcode.MOV, dest=dest, args=(Const.int(value),))


class TestBasicBlock:
    def test_append_and_iterate(self):
        block = BasicBlock("b")
        r = VReg(0, Type.INT)
        block.append(mov(r, 1))
        block.append(Instruction(Opcode.RET))
        assert len(block) == 2
        assert block.is_terminated

    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.RET))
        with pytest.raises(ValueError):
            block.append(mov(VReg(0, Type.INT), 1))

    def test_successor_names(self):
        block = BasicBlock("b")
        block.append(
            Instruction(Opcode.CBR, args=(Const.int(1),), targets=("x", "y"))
        )
        assert block.successor_names() == ("x", "y")

    def test_ret_has_no_successors(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.RET))
        assert block.successor_names() == ()

    def test_unterminated_block(self):
        block = BasicBlock("b")
        assert block.terminator is None
        assert block.successor_names() == ()

    def test_insert_before_terminator(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.BR, targets=("x",)))
        instr = mov(VReg(0, Type.INT), 5)
        block.insert_before_terminator(instr)
        assert block.instructions[0] is instr

    def test_retarget(self):
        block = BasicBlock("b")
        block.append(
            Instruction(Opcode.CBR, args=(Const.int(0),), targets=("x", "y"))
        )
        block.retarget("x", "z")
        assert block.successor_names() == ("z", "y")

    def test_remove(self):
        block = BasicBlock("b")
        instr = mov(VReg(0, Type.INT), 1)
        block.append(instr)
        block.remove(instr)
        assert len(block) == 0

    def test_remove_missing_raises(self):
        block = BasicBlock("b")
        with pytest.raises(ValueError):
            block.remove(mov(VReg(0, Type.INT), 1))

    def test_body_excludes_terminator(self):
        block = BasicBlock("b")
        block.append(mov(VReg(0, Type.INT), 1))
        block.append(Instruction(Opcode.RET))
        assert len(block.body()) == 1


class TestFunction:
    def test_vreg_allocation_is_unique(self):
        func = Function("f")
        regs = {func.new_vreg(Type.INT).uid for _ in range(10)}
        assert len(regs) == 10

    def test_params_are_registers(self):
        func = Function("f")
        p = func.add_param(Type.FLOAT, "x")
        assert p in func.params and p.type is Type.FLOAT

    def test_entry_is_first_block(self):
        func = Function("f")
        first = func.new_block("a")
        func.new_block("b")
        assert func.entry is first

    def test_entry_without_blocks_raises(self):
        with pytest.raises(ValueError):
            Function("f").entry

    def test_new_block_names_unique(self):
        func = Function("f")
        names = {func.new_block().name for _ in range(5)}
        assert len(names) == 5

    def test_duplicate_block_rejected(self):
        func = Function("f")
        func.add_block(BasicBlock("x"))
        with pytest.raises(ValueError):
            func.add_block(BasicBlock("x"))

    def test_local_arrays(self):
        func = Function("f")
        sym = func.add_local_array("buf", Type.INT, 8)
        assert sym.function == "f" and not sym.is_global
        with pytest.raises(ValueError):
            func.add_local_array("buf", Type.INT, 8)

    def test_predecessor_map(self):
        func = Function("f")
        a = func.new_block("a")
        b = func.new_block("b")
        a.append(Instruction(Opcode.BR, targets=(b.name,)))
        b.append(Instruction(Opcode.RET))
        preds = func.predecessor_map()
        assert preds[b.name] == [a.name]
        assert preds[a.name] == []

    def test_find_block_of(self):
        func = Function("f")
        a = func.new_block("a")
        instr = mov(func.new_vreg(Type.INT), 1)
        a.append(instr)
        assert func.find_block_of(instr) is a
        assert func.find_block_of(mov(VReg(99, Type.INT), 0)) is None

    def test_set_entry_reorders(self):
        func = Function("f")
        func.new_block("a")
        b = func.new_block("b")
        func.set_entry(b.name)
        assert func.entry is b


class TestCloneFunction:
    def build(self):
        func = Function("f", Type.INT)
        r = func.new_vreg(Type.INT, "x")
        block = func.new_block("entry")
        block.append(mov(r, 3))
        block.append(Instruction(Opcode.RET, args=(r,)))
        return func

    def test_clone_is_independent(self):
        func = self.build()
        clone = clone_function(func)
        clone.blocks["entry0"].instructions.pop()
        assert len(func.blocks["entry0"].instructions) == 2

    def test_clone_has_fresh_instruction_uids(self):
        func = self.build()
        clone = clone_function(func)
        original_uids = {i.uid for i in func.instructions()}
        clone_uids = {i.uid for i in clone.instructions()}
        assert not (original_uids & clone_uids)

    def test_clone_shares_register_identities(self):
        func = self.build()
        clone = clone_function(func, "g")
        assert clone.name == "g"
        orig = next(iter(func.instructions())).dest
        cloned = next(iter(clone.instructions())).dest
        assert orig == cloned


class TestModule:
    def test_global_initializer_padding(self):
        module = Module()
        module.add_global("g", Type.INT, 4, init=[1, 2])
        assert module.global_inits["g"] == [1, 2, 0, 0]

    def test_global_float_default(self):
        module = Module()
        module.add_global("f", Type.FLOAT, 2)
        assert module.global_inits["f"] == [0.0, 0.0]

    def test_oversized_initializer_rejected(self):
        module = Module()
        with pytest.raises(ValueError):
            module.add_global("g", Type.INT, 1, init=[1, 2])

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global("g", Type.INT)
        with pytest.raises(ValueError):
            module.add_global("g", Type.INT)

    def test_main_accessor(self):
        module = Module()
        with pytest.raises(KeyError):
            module.main
        func = Function("main")
        module.add_function(func)
        assert module.main is func

    def test_clone_module_deep(self):
        module = Module()
        module.add_global("g", Type.INT, 2, init=[5, 6])
        func = Function("main")
        block = func.new_block("entry")
        block.append(Instruction(Opcode.RET))
        module.add_function(func)
        clone = clone_module(module)
        clone.global_inits["g"][0] = 99
        assert module.global_inits["g"][0] == 5
        clone.functions["main"].blocks["entry0"].instructions.pop()
        assert len(module.functions["main"].blocks["entry0"].instructions) == 1
