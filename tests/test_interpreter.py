"""Tests for the interpreter: semantics, faults, accounting."""

import pytest

from repro.frontend import compile_source
from repro.ir import Function, Instruction, IRBuilder, Module, Opcode
from repro.ir.operands import Const, VReg
from repro.ir.types import Type
from repro.runtime import (
    ExecutionLimitExceeded,
    Interpreter,
    RuntimeFault,
    run_module,
)
from repro.runtime.interpreter import (
    _shift_left,
    _shift_right,
    c_div,
    c_mod,
    format_value,
    wrap_int,
)
from repro.runtime.machine import MachineConfig

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class TestIntSemantics:
    def test_wrap_int_identity_in_range(self):
        assert wrap_int(42) == 42
        assert wrap_int(-42) == -42

    def test_wrap_int_at_boundaries(self):
        assert wrap_int(2**63 - 1) == 2**63 - 1
        assert wrap_int(2**63) == -(2**63)
        assert wrap_int(-(2**63) - 1) == 2**63 - 1

    def test_wrap_int_overflow(self):
        assert wrap_int(2**64) == 0
        assert wrap_int(2**64 + 5) == 5

    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
    )
    def test_c_division(self, a, b, q, r):
        assert c_div(a, b) == q
        assert c_mod(a, b) == r

    def test_wrap_int_at_int64_extremes(self):
        assert wrap_int(INT64_MIN) == INT64_MIN
        assert wrap_int(INT64_MAX) == INT64_MAX
        assert wrap_int(INT64_MAX + 1) == INT64_MIN
        assert wrap_int(INT64_MIN - 1) == INT64_MAX
        assert wrap_int(INT64_MIN * 2) == 0

    @pytest.mark.parametrize(
        "a,b,q,r",
        [
            (INT64_MIN, 1, INT64_MIN, 0),
            (INT64_MIN, 2, -(2**62), 0),
            (INT64_MAX, -1, -INT64_MAX, 0),
            (INT64_MIN + 1, -1, INT64_MAX, 0),
            (-1, INT64_MAX, 0, -1),
            (INT64_MIN, INT64_MAX, -1, -1),
            (-9, 4, -2, -1),
            (-9, -4, 2, -1),
        ],
    )
    def test_c_division_at_extremes(self, a, b, q, r):
        assert c_div(a, b) == q
        assert c_mod(a, b) == r

    def test_c_division_truncates_negative_dividends_toward_zero(self):
        # C semantics: -7/2 == -3 (not Python's floor -4), remainder
        # takes the dividend's sign.
        assert c_div(-7, 2) == -3
        assert (-7) // 2 == -4  # the Python behavior we must not inherit
        assert c_mod(-7, 2) == -1
        assert (-7) % 2 == 1

    def test_shift_left_boundary_amounts(self):
        assert _shift_left(1, 0) == 1
        assert _shift_left(1, 62) == 2**62
        assert _shift_left(1, 63) == INT64_MIN  # wraps into the sign bit
        assert _shift_left(3, 63) == INT64_MIN  # only the low bit survives
        assert _shift_left(INT64_MAX, 1) == -2
        with pytest.raises(RuntimeFault):
            _shift_left(1, 64)
        with pytest.raises(RuntimeFault):
            _shift_left(1, -1)

    def test_shift_right_boundary_amounts(self):
        assert _shift_right(INT64_MAX, 0) == INT64_MAX
        assert _shift_right(INT64_MAX, 62) == 1
        assert _shift_right(INT64_MAX, 63) == 0
        # Arithmetic shift: the sign propagates.
        assert _shift_right(INT64_MIN, 63) == -1
        assert _shift_right(-1, 63) == -1
        with pytest.raises(RuntimeFault):
            _shift_right(1, 64)
        with pytest.raises(RuntimeFault):
            _shift_right(1, -1)

    @pytest.mark.parametrize(
        "expr",
        [
            "print((0 - 9) / 4); print((0 - 9) % 4);",
            "print(9 / (0 - 4)); print(9 % (0 - 4));",
            "print(1 << 63); print(1 << 0);",
            "print((0 - 1) >> 63); print(9223372036854775807 >> 62);",
            "print(9223372036854775807 + 1);",
            "print((0 - 9223372036854775807 - 1) - 1);",
            "print(3037000500 * 3037000499);",
        ],
    )
    def test_backends_agree_on_integer_edge_cases(self, expr):
        module = compile_source(f"void main() {{ {expr} }}")
        tree = run_module(module, backend="tree")
        decoded = run_module(module, backend="decoded")
        assert tree.to_dict() == decoded.to_dict()


class TestFaults:
    def run_body(self, body, decls=""):
        module = compile_source(f"{decls}\nvoid main() {{ {body} }}")
        return run_module(module)

    def test_division_by_zero(self):
        with pytest.raises(RuntimeFault):
            self.run_body("int z = 0; print(1 / z);")

    def test_modulo_by_zero(self):
        with pytest.raises(RuntimeFault):
            self.run_body("int z = 0; print(1 % z);")

    def test_load_out_of_bounds(self):
        with pytest.raises(RuntimeFault):
            self.run_body("print(a[10]);", decls="int a[4];")

    def test_store_out_of_bounds(self):
        with pytest.raises(RuntimeFault):
            self.run_body("a[-1] = 1;", decls="int a[4];")

    def test_pointer_out_of_bounds(self):
        with pytest.raises(RuntimeFault):
            self.run_body("int *p = &a[3]; p[2] = 1;", decls="int a[4];")

    def test_shift_out_of_range(self):
        with pytest.raises(RuntimeFault):
            self.run_body("int s = 70; print(1 << s);")

    def test_instruction_limit(self):
        module = compile_source("void main() { while (1) { } }")
        with pytest.raises(ExecutionLimitExceeded):
            run_module(module, max_instructions=10_000)

    def test_call_depth_limit(self):
        module = compile_source(
            "int f(int n) { return f(n + 1); } void main() { print(f(0)); }"
        )
        with pytest.raises(RuntimeFault):
            run_module(module)

    def test_call_depth_reset_after_faulted_run(self):
        # A fault raised inside a callee leaves call_depth > 0; before
        # run() reset it, repeated runs on one instance crept toward the
        # depth limit and eventually faulted with the wrong diagnostic.
        module = compile_source(
            "int f(int z) { return 1 / z; } void main() { print(f(0)); }"
        )
        interp = Interpreter(module)
        interp.max_call_depth = 4
        for _ in range(10):
            with pytest.raises(RuntimeFault, match="division by zero"):
                interp.run()


class TestAccounting:
    def test_cycles_accumulate(self):
        module = compile_source("void main() { print(1 + 2); }")
        result = run_module(module)
        assert result.cycles > 0
        assert result.instructions > 0

    def test_mul_costs_more_than_add(self):
        add = run_module(
            compile_source("void main() { int a = 1; int b = a + a; }")
        ).cycles
        mul = run_module(
            compile_source("void main() { int a = 1; int b = a * a; }")
        ).cycles
        assert mul > add

    def test_float_arithmetic_costs_extra(self):
        int_run = run_module(
            compile_source("void main() { int a = 1; int b = a + a; }")
        ).cycles
        float_run = run_module(
            compile_source("void main() { float a = 1.0; float b = a + a; }")
        ).cycles
        assert float_run > int_run

    def test_deterministic_across_runs(self):
        module = compile_source(
            """
            int a[8];
            void main() {
                int i;
                for (i = 0; i < 8; i++) { a[i] = i * 3; }
                print(a[7]);
            }
            """
        )
        first = run_module(module)
        second = run_module(module)
        assert first.output == second.output
        assert first.cycles == second.cycles

    def test_memory_reset_between_runs(self):
        module = compile_source(
            "int g;\nvoid main() { g = g + 1; print(g); }"
        )
        interp = Interpreter(module)
        assert interp.run().output == ["1"]
        assert interp.run().output == ["1"]


class TestHooks:
    def test_block_listener_sees_entry(self):
        module = compile_source(
            "void main() { int i; for (i = 0; i < 3; i++) { } }"
        )
        events = []
        interp = Interpreter(module)
        interp.block_listener = lambda f, p, b, c: events.append((f, p, b))
        interp.run()
        assert events[0][1] is None  # function entry has no predecessor
        headers = [e for e in events if e[2].startswith("for")]
        assert len(headers) == 4  # 3 iterations + final exit test

    def test_call_listener_pairs(self):
        module = compile_source(
            "int f() { return 1; } void main() { print(f() + f()); }"
        )
        events = []
        interp = Interpreter(module)
        interp.call_listener = lambda name, entering, c: events.append(
            (name, entering)
        )
        interp.run()
        assert events.count(("f", True)) == 2
        assert events.count(("f", False)) == 2
        assert events[0] == ("main", True)
        assert events[-1] == ("main", False)


class TestFormatting:
    def test_int_format(self):
        assert format_value(42) == "42"
        assert format_value(-3) == "-3"

    def test_float_format(self):
        assert format_value(1.5) == "1.5"
        assert format_value(1 / 3) == "0.333333"

    def test_return_value_surfaced(self):
        module = Module()
        func = Function("main", Type.INT)
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        b.ret(Const.int(9))
        assert run_module(module).return_value == 9
