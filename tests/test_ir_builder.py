"""Tests for the IRBuilder convenience API."""

import pytest

from repro.ir import Function, IRBuilder, Module, Opcode, verify_module
from repro.ir.operands import Const, VReg
from repro.ir.types import Type


def builder():
    func = Function("f")
    b = IRBuilder(func)
    b.start_block("entry")
    return func, b


class TestCoercion:
    def test_int_to_float_register(self):
        func, b = builder()
        r = func.new_vreg(Type.INT)
        out = b.coerce(r, Type.FLOAT)
        assert out.type is Type.FLOAT
        assert b.block.instructions[-1].opcode is Opcode.ITOF

    def test_int_to_float_constant_folds(self):
        _, b = builder()
        out = b.coerce(Const.int(3), Type.FLOAT)
        assert isinstance(out, Const) and out.value == 3.0

    def test_float_to_int_truncation_const(self):
        _, b = builder()
        out = b.coerce(Const.float(3.9), Type.INT)
        assert out.value == 3

    def test_identity_coercion_emits_nothing(self):
        func, b = builder()
        r = func.new_vreg(Type.INT)
        assert b.coerce(r, Type.INT) is r
        assert len(b.block.instructions) == 0

    def test_ptr_coercion_rejected(self):
        func, b = builder()
        p = func.new_vreg(Type.PTR)
        with pytest.raises(TypeError):
            b.coerce(p, Type.INT)


class TestArithmetic:
    def test_add_int(self):
        _, b = builder()
        out = b.add(Const.int(1), Const.int(2))
        assert out.type is Type.INT

    def test_mixed_promotes_to_float(self):
        func, b = builder()
        r = func.new_vreg(Type.INT)
        out = b.add(r, Const.float(1.0))
        assert out.type is Type.FLOAT
        # The int register must have been converted.
        assert any(
            i.opcode is Opcode.ITOF for i in b.block.instructions
        )

    def test_comparison_yields_int(self):
        _, b = builder()
        out = b.cmp(Opcode.LT, Const.float(1.0), Const.float(2.0))
        assert out.type is Type.INT

    def test_cmp_rejects_non_comparison(self):
        _, b = builder()
        with pytest.raises(ValueError):
            b.cmp(Opcode.ADD, Const.int(1), Const.int(2))

    def test_bitwise_forces_int(self):
        _, b = builder()
        out = b.binop(Opcode.AND, Const.int(6), Const.int(3))
        assert out.type is Type.INT

    def test_pointer_arithmetic_restricted(self):
        func, b = builder()
        p = func.new_vreg(Type.PTR)
        with pytest.raises(TypeError):
            b.binop(Opcode.MUL, p, Const.int(2))


class TestMemoryAndControl:
    def test_memory_roundtrip_shape(self):
        module = Module()
        g = module.add_global("g", Type.INT, 4)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        b.storeg(g, Const.int(1), Const.int(42))
        v = b.loadg(g, Const.int(1))
        b.print(v)
        b.ret()
        verify_module(module)

    def test_store_coerces_value(self):
        module = Module()
        g = module.add_global("f", Type.FLOAT, 1)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        store = b.storeg(g, Const.int(0), Const.int(7))
        assert store.args[2].type is Type.FLOAT
        b.ret()
        verify_module(module)

    def test_cbr_targets(self):
        func, b = builder()
        then = b.new_block("t")
        orelse = b.new_block("e")
        br = b.cbr(Const.int(1), then, orelse)
        assert br.targets == (then.name, orelse.name)

    def test_call_arity_checked(self):
        module = Module()
        callee = Function("g", Type.INT)
        callee.add_param(Type.INT, "x")
        module.add_function(callee)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        with pytest.raises(TypeError):
            b.call(callee, [])

    def test_call_returns_typed_register(self):
        module = Module()
        callee = Function("g", Type.FLOAT)
        module.add_function(callee)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        out = b.call(callee, [])
        assert out is not None and out.type is Type.FLOAT

    def test_void_call_returns_none(self):
        module = Module()
        callee = Function("g", Type.VOID)
        module.add_function(callee)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        assert b.call(callee, []) is None

    def test_emit_without_block_raises(self):
        func = Function("f")
        b = IRBuilder(func)
        with pytest.raises(ValueError):
            b.ret()

    def test_lea_and_ptradd(self):
        module = Module()
        g = module.add_global("g", Type.INT, 8)
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        p = b.lea(g, Const.int(2))
        q = b.ptradd(p, Const.int(1))
        v = b.loadp(q, Const.int(0), Type.INT)
        b.storep(q, Const.int(1), v)
        b.ret()
        assert p.type is Type.PTR and q.type is Type.PTR
        verify_module(module)
