"""Tests for the application-layer job orchestrator."""

import threading
import time
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    JobState,
    Orchestrator,
    RecordingObserver,
    RunJob,
    TransientJobError,
)
from repro.service.jobs import check_event_ordering

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 30; i++) {
        int k = 0;
        int f = 0;
        while (k < 20) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""


@dataclass(frozen=True)
class FakeSpec:
    """Synthetic job spec driving a test-registered handler."""

    tag: str = "x"

    op = "fake"


def make_orchestrator(handler, **kwargs):
    observer = RecordingObserver()
    kwargs.setdefault("workers", 1)
    orch = Orchestrator(observer=observer, **kwargs)
    orch.handlers[FakeSpec] = handler
    return orch, observer


@pytest.fixture()
def tiny_bench(monkeypatch):
    from repro.bench import suite as bench_suite

    spec = bench_suite.BenchmarkSpec(
        "tinyorch", "synthetic orchestrator test bench",
        lambda scale: PROGRAM, 1.0, "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinyorch", spec)
    return "tinyorch"


def test_submit_wait_done():
    orch, observer = make_orchestrator(lambda ctx, spec: {"ok": spec.tag})
    try:
        job = orch.submit(FakeSpec("a"))
        orch.wait(job, timeout=10)
        assert job.state is JobState.DONE
        assert job.result == {"ok": "a"}
        assert job.metrics is not None
        kinds = observer.kinds(job.id)
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_finished"
        assert check_event_ordering(observer.for_job(job.id)) == []
    finally:
        orch.shutdown()


def test_unknown_spec_rejected():
    orch, _ = make_orchestrator(lambda ctx, spec: {})
    try:
        with pytest.raises(TypeError):
            orch.submit(object())
    finally:
        orch.shutdown()


def test_handler_exception_fails_job():
    def boom(ctx, spec):
        raise ValueError("broken input")

    orch, observer = make_orchestrator(boom)
    try:
        job = orch.submit(FakeSpec())
        orch.wait(job, timeout=10)
        assert job.state is JobState.FAILED
        assert "ValueError" in job.error and "broken input" in job.error
        assert observer.kinds(job.id)[-1] == "job_finished"
    finally:
        orch.shutdown()


def test_timeout_fails_job():
    release = threading.Event()

    def slow(ctx, spec):
        release.wait(20)
        return {}

    orch, observer = make_orchestrator(slow)
    try:
        job = orch.submit(FakeSpec(), timeout=0.2)
        orch.wait(job, timeout=10)
        assert job.state is JobState.FAILED
        assert "budget" in job.error
        # The overrun attempt was asked to stop cooperatively.
        assert job.cancel_requested.is_set()
    finally:
        release.set()
        orch.shutdown()


def test_transient_failure_retries_then_succeeds():
    attempts = []

    def flaky(ctx, spec):
        attempts.append(ctx.job.retries)
        if len(attempts) == 1:
            raise TransientJobError("worker died")
        return {"attempt": len(attempts)}

    orch, observer = make_orchestrator(flaky, max_retries=2)
    try:
        job = orch.submit(FakeSpec())
        orch.wait(job, timeout=10)
        assert job.state is JobState.DONE
        assert job.retries == 1
        assert job.result == {"attempt": 2}
        events = observer.for_job(job.id)
        starts = [e for e in events if e.kind == "job_started"]
        assert [e.args["retries"] for e in starts] == [0, 1]
        # Exactly one terminal notification, after the retry.
        assert check_event_ordering(events) == []
        finish = events[-1]
        assert finish.args["retries"] == 1
    finally:
        orch.shutdown()


def test_retry_budget_exhausted():
    def always_flaky(ctx, spec):
        raise TransientJobError("still dying")

    orch, observer = make_orchestrator(always_flaky, max_retries=1)
    try:
        job = orch.submit(FakeSpec())
        orch.wait(job, timeout=10)
        assert job.state is JobState.FAILED
        assert job.retries == 1
        assert "still dying" in job.error
        assert orch.stats()["jobs"]["retries"] == 1
    finally:
        orch.shutdown()


def test_cancel_queued_job():
    gate = threading.Event()

    def blocker(ctx, spec):
        gate.wait(20)
        return {}

    orch, observer = make_orchestrator(blocker, workers=1)
    try:
        first = orch.submit(FakeSpec("hold"))
        second = orch.submit(FakeSpec("victim"))
        assert orch.cancel(second.id) is True
        orch.wait(second, timeout=10)
        assert second.state is JobState.CANCELLED
        assert observer.kinds(second.id) == ["job_finished"]
        gate.set()
        orch.wait(first, timeout=10)
        assert first.state is JobState.DONE
    finally:
        gate.set()
        orch.shutdown()


def test_cancel_running_job_cooperatively():
    entered = threading.Event()

    def cooperative(ctx, spec):
        entered.set()
        while True:
            ctx.check()
            time.sleep(0.01)

    orch, observer = make_orchestrator(cooperative)
    try:
        job = orch.submit(FakeSpec())
        assert entered.wait(10)
        assert orch.cancel(job.id) is True
        orch.wait(job, timeout=10)
        assert job.state is JobState.CANCELLED
        assert job.result is None
    finally:
        orch.shutdown()


def test_cancel_terminal_job_is_noop():
    orch, _ = make_orchestrator(lambda ctx, spec: {})
    try:
        job = orch.submit(FakeSpec())
        orch.wait(job, timeout=10)
        assert orch.cancel(job.id) is False
        assert orch.cancel("no-such-job") is False
    finally:
        orch.shutdown()


def test_drain_stops_intake():
    orch, _ = make_orchestrator(lambda ctx, spec: {})
    try:
        job = orch.submit(FakeSpec())
        assert orch.drain(timeout=10) is True
        assert job.state is JobState.DONE
        with pytest.raises(RuntimeError):
            orch.submit(FakeSpec())
    finally:
        orch.shutdown()


def test_shutdown_cancels_queued_and_joins():
    gate = threading.Event()

    def blocker(ctx, spec):
        gate.wait(20)
        ctx.check()
        return {}

    orch, _ = make_orchestrator(blocker, workers=1)
    running = orch.submit(FakeSpec("running"))
    queued = orch.submit(FakeSpec("queued"))
    orch.cancel(running.id)
    gate.set()
    orch.shutdown(wait=True, timeout=10)
    assert queued.state is JobState.CANCELLED
    orch.wait(running, timeout=10)
    assert running.state.terminal
    assert all(not t.is_alive() for t in orch._threads)


def test_run_job_via_real_pipeline(tmp_path, tiny_bench):
    observer = RecordingObserver()
    orch = Orchestrator(
        cache=tmp_path / "cache", workers=2, observer=observer
    )
    try:
        first = orch.submit(RunJob(tiny_bench, cores=4))
        orch.wait(first, timeout=120)
        assert first.state is JobState.DONE
        assert first.result["output_matches"] is True
        assert first.result["speedup"] > 0
        assert check_event_ordering(observer.for_job(first.id)) == []

        # Resubmission: byte-identical result, served warm.
        second = orch.submit(RunJob(tiny_bench, cores=4))
        orch.wait(second, timeout=120)
        assert second.result == first.result
        counters = orch.stats()["artifacts"]["artifacts"]
        assert sum(row["hits"] for row in counters.values()) > 0
    finally:
        orch.shutdown()


def test_concurrent_jobs_get_disjoint_metric_deltas():
    """Two jobs running simultaneously on different worker threads must
    not see each other's counters: the per-attempt registry scope is
    thread-local."""
    from repro.obs import REGISTRY

    barrier = threading.Barrier(2, timeout=10)

    def counting(ctx, spec):
        barrier.wait()  # both attempts are now in-flight together
        REGISTRY.inc(f"test.work.{spec.tag}", int(spec.tag))
        barrier.wait()  # neither has folded its scope yet
        return {}

    orch, _ = make_orchestrator(counting, workers=2)
    try:
        before = REGISTRY.snapshot()["counters"]
        jobs = [orch.submit(FakeSpec("3")), orch.submit(FakeSpec("5"))]
        for job in jobs:
            orch.wait(job, timeout=10)
            assert job.state is JobState.DONE
        assert jobs[0].metrics["counters"] == {"test.work.3": 3}
        assert jobs[1].metrics["counters"] == {"test.work.5": 5}
        # Scopes fold into the global registry on exit.
        after = REGISTRY.snapshot()["counters"]
        assert after.get("test.work.3", 0) - before.get("test.work.3", 0) == 3
        assert after.get("test.work.5", 0) - before.get("test.work.5", 0) == 5
    finally:
        orch.shutdown()


def test_traced_submit_attaches_spans():
    from repro.obs import get_tracer

    def spanful(ctx, spec):
        tracer = get_tracer()
        with tracer.span("unit.work", tag=spec.tag):
            pass
        return {}

    orch, _ = make_orchestrator(spanful)
    try:
        traced = orch.submit(FakeSpec("t"), trace=True)
        orch.wait(traced, timeout=10)
        assert traced.state is JobState.DONE
        assert traced.spans, "traced job captured no spans"
        names = [span["name"] for span in traced.spans]
        assert "unit.work" in names

        plain = orch.submit(FakeSpec("p"))
        orch.wait(plain, timeout=10)
        assert plain.spans is None
    finally:
        orch.shutdown()


def test_status_reports_queue_and_workers():
    gate = threading.Event()
    entered = threading.Event()

    def blocker(ctx, spec):
        entered.set()
        gate.wait(20)
        return {}

    orch, _ = make_orchestrator(blocker, workers=1)
    try:
        running = orch.submit(FakeSpec("run"))
        queued = orch.submit(FakeSpec("wait"))
        assert entered.wait(10)
        status = orch.status()
        assert status["accepting"] is True
        assert status["queue"]["running"] == 1
        assert status["queue"]["queued"] == 1
        assert status["workers"]["configured"] == 1
        assert status["workers"]["alive"] == 1
        (entry,) = status["in_flight"]
        assert entry["job"] == running.id
        assert entry["op"] == "fake"
        assert entry["age_seconds"] >= 0
        gate.set()
        for job in (running, queued):
            orch.wait(job, timeout=10)
        status = orch.status()
        assert status["queue"]["done"] == 2
        assert status["in_flight"] == []
        assert set(status["queue"]) == {
            state.value for state in JobState
        }
    finally:
        gate.set()
        orch.shutdown()


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # transient failures
            st.integers(min_value=0, max_value=3),  # stage events
        ),
        min_size=1,
        max_size=4,
    )
)
def test_event_ordering_property_through_orchestrator(plan):
    """Real orchestrator streams always satisfy the observer contract,
    whatever mix of retries and stage activity the handlers produce."""
    failures_left = {}

    def scripted(ctx, spec):
        index = int(spec.tag)
        fail, stages = plan[index]
        for count in range(stages):
            ctx.observer.stage_completed(
                None, f"bench{index}", f"stage{count}", "compute", 0.0
            )
        if failures_left[index] > 0:
            failures_left[index] -= 1
            raise TransientJobError("scripted failure")
        return {"index": index}

    orch, observer = make_orchestrator(scripted, workers=2, max_retries=2)
    try:
        jobs = []
        for index, (fail, _) in enumerate(plan):
            failures_left[index] = fail
            jobs.append(orch.submit(FakeSpec(str(index))))
        for job in jobs:
            orch.wait(job, timeout=30)
            assert job.state is JobState.DONE
            assert check_event_ordering(observer.for_job(job.id)) == []
    finally:
        orch.shutdown()
