"""Tests for the textual IR printer."""

from repro.frontend import compile_source
from repro.ir import (
    Instruction,
    Opcode,
    function_to_str,
    instruction_to_str,
    module_to_str,
)
from repro.ir.operands import Const, VReg
from repro.ir.types import Type


class TestInstructionToStr:
    def test_arith(self):
        instr = Instruction(
            Opcode.ADD,
            dest=VReg(1, Type.INT, "x"),
            args=(VReg(0, Type.INT), Const.int(4)),
        )
        assert instruction_to_str(instr) == "%x.1 = add %t0, 4"

    def test_branch(self):
        instr = Instruction(Opcode.BR, targets=("exit",))
        assert instruction_to_str(instr) == "br -> exit"

    def test_cbr(self):
        instr = Instruction(
            Opcode.CBR, args=(VReg(2, Type.INT),), targets=("a", "b")
        )
        assert instruction_to_str(instr) == "cbr %t2 -> a, b"

    def test_call(self):
        instr = Instruction(
            Opcode.CALL,
            dest=VReg(0, Type.INT),
            args=(Const.int(1),),
            callee="f",
        )
        assert instruction_to_str(instr) == "%t0 = call @f 1"

    def test_sync_ops_show_dep(self):
        assert instruction_to_str(Instruction(Opcode.WAIT, dep_id=3)) == "wait #d3"
        assert (
            instruction_to_str(Instruction(Opcode.SIGNAL, dep_id=0))
            == "signal #d0"
        )


class TestModuleToStr:
    SOURCE = """
    int g = 7;
    float arr[4];
    int add1(int x) { return x + 1; }
    void main() {
        int buf[2];
        buf[0] = add1(g);
        print(buf[0]);
    }
    """

    def test_contains_globals_and_functions(self):
        module = compile_source(self.SOURCE)
        text = module_to_str(module)
        assert "global int @g[1] = [7]" in text
        assert "global float @arr[4]" in text
        assert "func int add1" in text
        assert "func void main" in text

    def test_contains_local_arrays(self):
        module = compile_source(self.SOURCE)
        text = function_to_str(module.functions["main"])
        assert "local int $buf[2]" in text

    def test_every_block_labelled(self):
        module = compile_source(self.SOURCE)
        func = module.functions["main"]
        text = function_to_str(func)
        for name in func.blocks:
            assert f"{name}:" in text

    def test_roundtrip_stability(self):
        module = compile_source(self.SOURCE)
        assert module_to_str(module) == module_to_str(module)
