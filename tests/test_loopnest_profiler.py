"""Tests for the loop nesting graphs and the profiler."""

from repro.analysis.loopnest import build_static_loop_nest_graph
from repro.frontend import compile_source
from repro.runtime import profile_module

NESTED = """
int g;
void inner_work() {
    int k;
    for (k = 0; k < 3; k++) { g = g + k; }
}
void main() {
    int i;
    for (i = 0; i < 4; i++) {
        inner_work();
    }
    int j;
    for (j = 0; j < 2; j++) {
        inner_work();
    }
}
"""


class TestStaticGraph:
    def test_cross_function_nesting(self):
        module = compile_source(NESTED)
        nest = build_static_loop_nest_graph(module)
        inner = ("inner_work", next(
            l.header for l in nest.forests["inner_work"]
        ))
        # Both of main's loops are parents of the callee's loop: the graph
        # is not a tree (the paper's Figure 8 point).
        parents = sorted(nest.graph.predecessors(inner))
        assert len(parents) == 2
        assert all(p[0] == "main" for p in parents)

    def test_roots_are_mains_loops(self):
        module = compile_source(NESTED)
        nest = build_static_loop_nest_graph(module)
        roots = nest.roots()
        assert len(roots) == 2
        assert all(r[0] == "main" for r in roots)

    def test_nesting_levels(self):
        module = compile_source(NESTED)
        nest = build_static_loop_nest_graph(module)
        for root in nest.roots():
            assert nest.nesting_level(root) == 1
        inner = next(n for n in nest.graph.nodes if n[0] == "inner_work")
        assert nest.nesting_level(inner) == 2

    def test_in_function_nesting(self):
        module = compile_source(
            """
            void main() {
                int i; int j;
                for (i = 0; i < 2; i++) {
                    for (j = 0; j < 2; j++) { }
                }
            }
            """
        )
        nest = build_static_loop_nest_graph(module)
        assert len(nest.roots()) == 1
        root = nest.roots()[0]
        assert len(nest.children(root)) == 1

    def test_call_outside_loops_passes_through(self):
        module = compile_source(
            """
            void leaf() { int i; for (i = 0; i < 2; i++) { } }
            void shim() { leaf(); }
            void main() {
                int i;
                for (i = 0; i < 2; i++) { shim(); }
            }
            """
        )
        nest = build_static_loop_nest_graph(module)
        leaf_loop = next(n for n in nest.graph.nodes if n[0] == "leaf")
        main_loop = next(n for n in nest.graph.nodes if n[0] == "main")
        assert leaf_loop in nest.children(main_loop)


class TestProfiler:
    def test_invocation_and_iteration_counts(self):
        module = compile_source(NESTED)
        profile = profile_module(module)
        inner_id = next(
            lid for lid in profile.loops if lid[0] == "inner_work"
        )
        inner = profile.loops[inner_id]
        assert inner.invocations == 6  # 4 + 2 calls
        # Header entered 4 times per invocation (3 iterations + exit test).
        assert inner.iterations == 6 * 4

    def test_dynamic_nesting_edges(self):
        module = compile_source(NESTED)
        profile = profile_module(module)
        inner_id = next(
            lid for lid in profile.loops if lid[0] == "inner_work"
        )
        graph = profile.dynamic_nesting.graph
        parents = sorted(graph.predecessors(inner_id))
        assert len(parents) == 2

    def test_total_vs_self_cycles(self):
        module = compile_source(NESTED)
        profile = profile_module(module)
        main_loops = [p for lid, p in profile.loops.items() if lid[0] == "main"]
        inner = next(
            p for lid, p in profile.loops.items() if lid[0] == "inner_work"
        )
        for outer in main_loops:
            # The outer loop's time includes its callee's loop time.
            assert outer.total_cycles >= outer.self_cycles
        assert inner.total_cycles == inner.self_cycles

    def test_block_counts(self):
        module = compile_source(
            "void main() { int i; for (i = 0; i < 5; i++) { print(i); } }"
        )
        profile = profile_module(module)
        header = next(
            b for (f, b) in profile.block_counts if b.startswith("for")
        )
        assert profile.block_count("main", header) == 6  # 5 iters + exit

    def test_call_average_cycles(self):
        module = compile_source(
            """
            int f() { return 1 + 2 * 3; }
            void main() { print(f() + f()); }
            """
        )
        profile = profile_module(module)
        assert profile.func_activations["f"] == 2
        assert profile.call_avg_cycles("f") > 0

    def test_profile_total_matches_run(self):
        module = compile_source(NESTED)
        profile = profile_module(module)
        assert profile.total_cycles == profile.result.cycles > 0

    def test_loop_fraction_sane(self):
        module = compile_source(NESTED)
        profile = profile_module(module)
        for loop_profile in profile.loops.values():
            assert loop_profile.total_cycles <= profile.total_cycles
