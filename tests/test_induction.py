"""Tests for induction-variable and invariant analysis."""

from repro.analysis.induction import analyze_induction
from repro.analysis.loops import find_loops
from repro.frontend import compile_source


def loop_induction(source, header_prefix="for"):
    module = compile_source(source)
    func = module.functions["main"]
    forest = find_loops(func)
    loop = next(l for l in forest if l.header.startswith(header_prefix))
    return func, loop, analyze_induction(func, loop)


def uid_of(func, name):
    for instr in func.instructions():
        if instr.dest is not None and instr.dest.name == name:
            return instr.dest.uid
    raise AssertionError(name)


class TestBasicIVs:
    def test_for_counter_detected(self):
        func, loop, info = loop_induction(
            "void main() { int i; for (i = 0; i < 9; i++) { } }"
        )
        i_uid = uid_of(func, "i")
        assert i_uid in info.basic_ivs
        iv = info.basic_ivs[i_uid]
        assert iv.step == 1
        assert iv.once_per_iteration
        assert iv.disambiguates

    def test_negative_step(self):
        func, loop, info = loop_induction(
            "void main() { int i; for (i = 9; i > 0; i--) { } }"
        )
        iv = info.basic_ivs[uid_of(func, "i")]
        assert iv.step == -1

    def test_strided_step(self):
        func, loop, info = loop_induction(
            "void main() { int i; for (i = 0; i < 20; i += 3) { } }"
        )
        iv = info.basic_ivs[uid_of(func, "i")]
        assert iv.step == 3

    def test_invariant_step_has_no_constant(self):
        func, loop, info = loop_induction(
            """
            void main() {
                int n = 2;
                int i;
                for (i = 0; i < 20; i += n) { }
            }
            """
        )
        iv = info.basic_ivs[uid_of(func, "i")]
        assert iv.step is None
        assert not iv.disambiguates

    def test_conditional_update_is_not_basic_iv(self):
        func, loop, info = loop_induction(
            """
            void main() {
                int i = 0;
                int steps = 0;
                for (steps = 0; steps < 10; steps++) {
                    if (steps % 2 == 0) { i = i + 1; }
                }
                print(i);
            }
            """
        )
        i_uid = uid_of(func, "i")
        iv = info.basic_ivs.get(i_uid)
        # Conditionally updated: allowed as an IV for sync exemption, but
        # it must not be used for subscript disambiguation.
        assert iv is None or not iv.disambiguates

    def test_non_iv_accumulator(self):
        func, loop, info = loop_induction(
            """
            int g;
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 4; i++) { s = s * 2 + 1; }
                g = s;
            }
            """
        )
        s_uid = uid_of(func, "s")
        assert s_uid not in info.basic_ivs
        assert not info.sync_exempt(s_uid)


class TestInvariants:
    def test_outside_defined_register_invariant(self):
        func, loop, info = loop_induction(
            """
            int g;
            void main() {
                int bound = 17;
                int i;
                int s = 0;
                for (i = 0; i < 10; i++) { s += bound; }
                g = s;
            }
            """
        )
        assert info.is_invariant(uid_of(func, "bound"))

    def test_in_loop_pure_computation_of_invariants(self):
        func, loop, info = loop_induction(
            """
            int g;
            void main() {
                int a = 3;
                int i;
                int s = 0;
                for (i = 0; i < 10; i++) {
                    int scaled = a * 4;
                    s += scaled;
                }
                g = s;
            }
            """
        )
        assert info.is_invariant(uid_of(func, "scaled"))

    def test_loads_are_not_invariant(self):
        func, loop, info = loop_induction(
            """
            int g[4];
            void main() {
                int i;
                int s = 0;
                for (i = 0; i < 4; i++) {
                    int v = g[0];
                    s += v;
                    g[0] = s;
                }
            }
            """
        )
        assert not info.is_invariant(uid_of(func, "v"))


class TestDerivedIVs:
    def test_scaled_iv_is_derived(self):
        func, loop, info = loop_induction(
            """
            int g[64];
            void main() {
                int i;
                for (i = 0; i < 8; i++) {
                    int idx = i * 8 + 1;
                    g[idx % 64] = i;
                }
            }
            """
        )
        assert info.is_induction(uid_of(func, "idx"))

    def test_sync_exempt_covers_ivs_and_invariants(self):
        func, loop, info = loop_induction(
            """
            void main() {
                int k = 5;
                int i;
                for (i = 0; i < 4; i++) { int t = i + k; print(t); }
            }
            """
        )
        assert info.sync_exempt(uid_of(func, "i"))
        assert info.sync_exempt(uid_of(func, "k"))


class TestReadonlyGlobals:
    def test_readonly_global_load_is_invariant(self):
        from repro.analysis.dependence import DependenceAnalysis
        from repro.frontend import compile_source

        source = """
        int W = 32;
        int grid[1024];
        void main() {
            int row;
            for (row = 0; row < 4; row++) {
                int col;
                for (col = 0; col < W; col++) {
                    grid[row * W + col] = grid[row * W + col] + 1;
                }
            }
        }
        """
        module = compile_source(source)
        analysis = DependenceAnalysis(module)
        assert "W" in analysis.readonly_globals
        assert "grid" not in analysis.readonly_globals
        func = module.functions["main"]
        from repro.analysis.loops import find_loops

        inner = next(
            l for l in find_loops(func) if l.parent is not None
        )
        # row*W + col is affine once the W load is invariant: no deps.
        assert analysis.loop_dependences(func, inner) == []

    def test_written_global_not_readonly(self):
        from repro.analysis.dependence import DependenceAnalysis
        from repro.frontend import compile_source

        module = compile_source(
            """
            int N = 8;
            void main() { N = 9; print(N); }
            """
        )
        analysis = DependenceAnalysis(module)
        assert "N" not in analysis.readonly_globals

    def test_pointer_store_disqualifies(self):
        from repro.analysis.dependence import DependenceAnalysis
        from repro.frontend import compile_source

        module = compile_source(
            """
            int a[4];
            void main() { int *p = a; *p = 1; print(a[0]); }
            """
        )
        analysis = DependenceAnalysis(module)
        assert "a" not in analysis.readonly_globals


class TestConditionalCounters:
    def test_conditional_counter_not_sync_exempt(self):
        """A conditionally-bumped counter is not locally computable from
        the iteration number: it must keep its synchronization."""
        func, loop, info = loop_induction(
            """
            int g;
            void main() {
                int hits = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 3 == 0) { hits = hits + 1; }
                }
                g = hits;
            }
            """
        )
        hits_uid = uid_of(func, "hits")
        assert not info.sync_exempt(hits_uid)

    def test_unconditional_counter_exempt(self):
        func, loop, info = loop_induction(
            """
            int g;
            void main() {
                int n = 0;
                int i;
                for (i = 0; i < 10; i++) { n = n + 2; }
                g = n;
            }
            """
        )
        assert info.sync_exempt(uid_of(func, "n"))

    def test_derived_of_conditional_iv_not_exempt(self):
        func, loop, info = loop_induction(
            """
            int g[64];
            void main() {
                int hits = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 3 == 0) { hits = hits + 1; }
                    int slot = hits * 2;
                    g[slot % 64] = i;
                }
            }
            """
        )
        assert not info.sync_exempt(uid_of(func, "slot"))

    def test_conditional_counter_creates_dependence(self):
        from repro.analysis.dependence import (
            DependenceAnalysis,
            DependenceKind,
        )
        from repro.analysis.loops import find_loops
        from repro.frontend import compile_source

        module = compile_source(
            """
            int g;
            void main() {
                int hits = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 3 == 0) { hits = hits + 1; }
                }
                g = hits;
            }
            """
        )
        func = module.functions["main"]
        loop = next(iter(find_loops(func)))
        deps = DependenceAnalysis(module).loop_dependences(func, loop)
        assert any(d.kind is DependenceKind.REGISTER for d in deps)
