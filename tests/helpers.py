"""Shared test utilities: quick CFG and program construction."""

from typing import Dict, List, Sequence, Tuple

from repro.frontend import compile_source
from repro.ir import BasicBlock, Function, Instruction, Module, Opcode
from repro.ir.operands import Const
from repro.ir.types import Type


def build_cfg(edges: Dict[str, Sequence[str]], entry: str = "A") -> Function:
    """Build a function whose CFG matches ``edges``.

    Blocks with zero successors get RET, one gets BR, two get CBR (on a
    constant condition -- these functions are for structural analyses, not
    execution).
    """
    func = Function("test")
    names = list(edges)
    for target_list in edges.values():
        for name in target_list:
            if name not in names:
                names.append(name)
    ordered = [entry] + [n for n in names if n != entry]
    for name in ordered:
        func.add_block(BasicBlock(name))
    for name in ordered:
        block = func.blocks[name]
        targets = tuple(edges.get(name, ()))
        if len(targets) == 0:
            block.append(Instruction(Opcode.RET))
        elif len(targets) == 1:
            block.append(Instruction(Opcode.BR, targets=targets))
        elif len(targets) == 2:
            block.append(
                Instruction(Opcode.CBR, args=(Const.int(1),), targets=targets)
            )
        else:
            raise ValueError("at most two successors per block")
    return func


def compile_and_find_loop(source: str, func_name: str, header_contains: str):
    """Compile MiniC and return (module, function, loop) for the loop whose
    header name contains ``header_contains``."""
    from repro.analysis.loops import find_loops

    module = compile_source(source)
    func = module.functions[func_name]
    forest = find_loops(func)
    for loop in forest:
        if header_contains in loop.header:
            return module, func, loop
    raise AssertionError(
        f"no loop with header containing {header_contains!r}; "
        f"headers: {[l.header for l in forest]}"
    )
