"""Tests for the loop-carried dependence analysis (HELIX Step 2)."""

from repro.analysis.dependence import (
    DependenceAnalysis,
    DependenceKind,
    affine_of,
)
from repro.analysis.induction import analyze_induction
from repro.analysis.loops import find_loops
from repro.frontend import compile_source
from repro.ir import Opcode


def loop_deps(source, func_name="main", header_prefix="for"):
    module = compile_source(source)
    func = module.functions[func_name]
    forest = find_loops(func)
    loop = next(l for l in forest if l.header.startswith(header_prefix))
    analysis = DependenceAnalysis(module)
    return module, func, loop, analysis.loop_dependences(func, loop)


class TestDoall:
    def test_iv_indexed_array_has_no_carried_deps(self):
        _, _, _, deps = loop_deps(
            """
            int a[16];
            void main() {
                int i;
                for (i = 0; i < 16; i++) { a[i] = a[i] + 1; }
            }
            """
        )
        assert deps == []

    def test_reads_of_readonly_arrays_are_free(self):
        _, _, _, deps = loop_deps(
            """
            int a[16];
            int b[16];
            void main() {
                int i;
                for (i = 0; i < 16; i++) { b[i] = a[i] * 2; }
            }
            """
        )
        assert deps == []

    def test_strided_affine_accesses_disambiguated(self):
        _, _, _, deps = loop_deps(
            """
            int a[64];
            void main() {
                int i;
                for (i = 0; i < 16; i++) { a[2 * i + 1] = a[2 * i + 1] + 1; }
            }
            """
        )
        assert deps == []

    def test_distinct_constant_cells_never_conflict(self):
        _, _, _, deps = loop_deps(
            """
            int a[4];
            void main() {
                int i;
                for (i = 0; i < 8; i++) { a[0] = i; print(a[1]); }
            }
            """
        )
        # a[0] is written, a[1] is read: distinct constants, but the
        # write-write on a[0] across iterations is still carried (WAW).
        kinds = {d.kind for d in deps}
        assert DependenceKind.RAW not in kinds


class TestCarriedMemory:
    def test_scalar_global_accumulator(self):
        _, _, _, deps = loop_deps(
            """
            int total;
            void main() {
                int i;
                for (i = 0; i < 8; i++) { total = total + i; }
            }
            """
        )
        raw = [d for d in deps if d.kind is DependenceKind.RAW]
        assert raw, "accumulator through memory must be carried"
        assert raw[0].transfer_words == 1

    def test_shifted_subscript_is_carried(self):
        _, _, _, deps = loop_deps(
            """
            int a[32];
            void main() {
                int i;
                for (i = 1; i < 31; i++) { a[i] = a[i - 1] + 1; }
            }
            """
        )
        assert any(d.kind is DependenceKind.RAW for d in deps)

    def test_data_dependent_subscript_is_carried(self):
        _, _, _, deps = loop_deps(
            """
            int hist[16];
            int data[32];
            void main() {
                int i;
                for (i = 0; i < 32; i++) {
                    hist[data[i] % 16] = hist[data[i] % 16] + 1;
                }
            }
            """
        )
        assert any("hist" in d.location for d in deps)

    def test_pointer_accesses_conservative(self):
        _, _, _, deps = loop_deps(
            """
            int a[32];
            void main() {
                int *p = a;
                int i;
                for (i = 0; i < 8; i++) { *p = *p + 1; p = p + 1; }
            }
            """
        )
        assert any(d.kind in (DependenceKind.RAW, DependenceKind.WAW) for d in deps)

    def test_calls_carry_callee_effects(self):
        module, func, loop, deps = loop_deps(
            """
            int total;
            void bump() { total = total + 1; }
            void main() {
                int i;
                for (i = 0; i < 4; i++) { bump(); }
            }
            """
        )
        assert deps, "call writing a global must create a dependence"
        endpoints = deps[0].endpoints()
        assert all(e.opcode is Opcode.CALL for e in endpoints)


class TestCarriedRegisters:
    def test_register_accumulator(self):
        _, _, _, deps = loop_deps(
            """
            int g;
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 8; i++) { s = s * 3 + i; }
                g = s;
            }
            """
        )
        reg = [d for d in deps if d.kind is DependenceKind.REGISTER]
        assert len(reg) == 1
        assert reg[0].transfer_words == 1
        assert reg[0].sources and reg[0].sinks

    def test_induction_variable_exempt(self):
        _, _, _, deps = loop_deps(
            "void main() { int i; for (i = 0; i < 8; i++) { } }"
        )
        assert deps == []

    def test_invariant_exempt(self):
        _, _, _, deps = loop_deps(
            """
            void main() {
                int k = 7;
                int i;
                for (i = 0; i < 8; i++) { print(i + k); }
            }
            """
        )
        assert [d for d in deps if d.kind is DependenceKind.REGISTER] == []

    def test_iteration_private_value_exempt(self):
        _, _, _, deps = loop_deps(
            """
            void main() {
                int i;
                for (i = 0; i < 8; i++) {
                    int t = i * 2;
                    print(t);
                }
            }
            """
        )
        assert [d for d in deps if d.kind is DependenceKind.REGISTER] == []

    def test_sinks_are_upward_exposed_only(self):
        _, func, _, deps = loop_deps(
            """
            int g;
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 8; i++) {
                    s = s * 2 + 1;
                    print(s);
                }
                g = s;
            }
            """
        )
        reg = [d for d in deps if d.kind is DependenceKind.REGISTER][0]
        # print(s) happens after the redefinition, so it consumes the
        # current iteration's value, not the carried one.
        sink_ops = {i.opcode for i in reg.sinks}
        assert Opcode.PRINT not in sink_ops

    def test_constant_step_accumulator_is_iv_exempt(self):
        # `s = s + 1` is itself an induction variable: locally computable
        # from the iteration number, so no synchronization is needed.
        _, _, _, deps = loop_deps(
            """
            int g;
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 8; i++) { s = s + 1; }
                g = s;
            }
            """
        )
        assert [d for d in deps if d.kind is DependenceKind.REGISTER] == []


class TestStatistics:
    def test_dependence_statistics(self):
        module = compile_source(
            """
            int a[16];
            int total;
            void main() {
                int i;
                for (i = 0; i < 16; i++) {
                    a[i] = a[i] + 1;
                    total = total + a[i];
                }
            }
            """
        )
        func = module.functions["main"]
        forest = find_loops(func)
        loop = next(iter(forest))
        analysis = DependenceAnalysis(module)
        examined, carried = analysis.loop_dependence_statistics(func, loop)
        assert examined > carried > 0


class TestAffineCanonicalization:
    def get_info(self, source):
        module = compile_source(source)
        func = module.functions["main"]
        forest = find_loops(func)
        loop = next(iter(forest))
        info = analyze_induction(func, loop)
        return func, loop, info

    def test_same_expression_same_shape(self):
        func, loop, info = self.get_info(
            """
            int a[32];
            void main() {
                int i;
                for (i = 0; i < 8; i++) { a[i + 3] = a[i + 3] + 1; }
            }
            """
        )
        indices = []
        for instr in loop.instructions():
            if instr.opcode in (Opcode.LOADG, Opcode.STOREG):
                form = affine_of(instr.args[1], info)
                if form is not None:
                    indices.append(form)
        assert len(indices) >= 2
        assert indices[0].same_shape(indices[1])
        assert indices[0].coeff == 1 and indices[0].const == 3
