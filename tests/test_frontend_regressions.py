"""Regression-style frontend tests: trickier MiniC shapes."""

import pytest

from repro.frontend import MiniCError, compile_source
from repro.runtime import run_module


def run(source):
    return run_module(compile_source(source)).output


class TestTrickyControlFlow:
    def test_short_circuit_in_loop_condition(self):
        source = """
        int a[8];
        void main() {
            int i = 0;
            while (i < 8 && a[i] == 0) {
                a[i] = 1;
                i++;
            }
            print(i);
        }
        """
        assert run(source) == ["8"]

    def test_or_condition_with_side_window(self):
        source = """
        void main() {
            int x = 0;
            int y = 10;
            while (x < 3 || y > 8) {
                x++;
                y--;
            }
            print(x);
            print(y);
        }
        """
        # Loop runs while x<3 or y>8: iterations 1..3 get x to 3 / y to 7.
        assert run(source) == ["3", "7"]

    def test_nested_breaks_bind_to_inner_loop(self):
        source = """
        void main() {
            int count = 0;
            int i;
            for (i = 0; i < 3; i++) {
                int j;
                for (j = 0; j < 10; j++) {
                    if (j == 1) { break; }
                    count++;
                }
            }
            print(count);
        }
        """
        assert run(source) == ["3"]

    def test_continue_in_while_rechecks_condition(self):
        source = """
        void main() {
            int i = 0;
            int s = 0;
            while (i < 10) {
                i++;
                if (i % 2 == 0) { continue; }
                s += i;
            }
            print(s);
        }
        """
        assert run(source) == ["25"]

    def test_deeply_nested_conditionals(self):
        source = """
        void main() {
            int x = 5;
            if (x > 0) {
                if (x > 3) {
                    if (x > 4) { print(1); } else { print(2); }
                } else { print(3); }
            } else { print(4); }
        }
        """
        assert run(source) == ["1"]

    def test_empty_loop_body(self):
        assert run("void main() { int i; for (i = 0; i < 5; i++) { } print(i); }") == ["5"]

    def test_loop_with_zero_iterations(self):
        source = """
        void main() {
            int n = 0;
            int s = 7;
            int i;
            for (i = 0; i < n; i++) { s = 0; }
            print(s);
        }
        """
        assert run(source) == ["7"]


class TestOperatorsAndLiterals:
    def test_compound_operators_all(self):
        source = """
        void main() {
            int x = 20;
            x += 4; print(x);
            x -= 6; print(x);
            x *= 2; print(x);
            x /= 3; print(x);
            x %= 7; print(x);
        }
        """
        assert run(source) == ["24", "18", "36", "12", "5"]

    def test_decrement(self):
        assert run("void main() { int i = 3; i--; i--; print(i); }") == ["1"]

    def test_negative_global_initializer(self):
        assert run("int g = -9;\nvoid main() { print(g); }") == ["-9"]

    def test_float_literal_formats(self):
        assert run("void main() { print(1e2); print(.25); print(2.5e-1); }") == [
            "100",
            "0.25",
            "0.25",
        ]

    def test_unary_chain(self):
        assert run("void main() { int x = 3; print(- -x); print(!!x); }") == [
            "3",
            "1",
        ]

    def test_modulo_precedence_with_compare(self):
        assert run("void main() { print(7 % 3 == 1); }") == ["1"]

    def test_large_integers_wrap(self):
        source = """
        void main() {
            int big = 1;
            int i;
            for (i = 0; i < 64; i++) { big = big * 2; }
            print(big);
        }
        """
        # 2^64 wraps to 0 in 64-bit arithmetic.
        assert run(source) == ["0"]


class TestScopesAndShadowing:
    def test_loop_variable_scoped_to_block(self):
        source = """
        void main() {
            int i;
            for (i = 0; i < 2; i++) {
                int v = i * 10;
                print(v);
            }
        }
        """
        assert run(source) == ["0", "10"]

    def test_same_name_in_sibling_blocks(self):
        source = """
        void main() {
            if (1) { int t = 1; print(t); }
            if (1) { int t = 2; print(t); }
        }
        """
        assert run(source) == ["1", "2"]

    def test_local_array_shadowing_global(self):
        source = """
        int a[4];
        void fill_global() { a[0] = 100; }
        void main() {
            int a[4];
            a[0] = 5;
            fill_global();
            print(a[0]);
        }
        """
        assert run(source) == ["5"]

    def test_duplicate_param_rejected(self):
        with pytest.raises(MiniCError):
            compile_source("int f(int a, int a) { return a; } void main(){}")


class TestComments:
    def test_comments_everywhere(self):
        source = """
        // leading comment
        int g = 1; /* trailing */
        void main() {
            /* block
               spanning lines */
            print(g); // end of line
        }
        """
        assert run(source) == ["1"]
