"""Tests for the unified content-addressed :class:`ArtifactStore`."""

import pytest

from repro.artifacts import ArtifactStore, ScheduleMemo
from repro.bench import benchmark_fingerprint
from repro.evaluation.cache import EvaluationCache, code_version, fingerprint

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 30; i++) {
        int k = 0;
        int f = 0;
        while (k < 20) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""


@pytest.fixture()
def tiny_bench(monkeypatch):
    from repro.bench import suite as bench_suite
    from repro.evaluation import runner as runner_mod

    spec = bench_suite.BenchmarkSpec(
        "tinyart", "synthetic artifact test bench",
        lambda scale: PROGRAM, 1.0, "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinyart", spec)
    monkeypatch.setattr(runner_mod, "benchmark_names", lambda: ["tinyart"])
    return "tinyart"


def test_stage_key_matches_pre_refactor_formula(tiny_bench):
    """The store's key is byte-identical to the old ``_disk_key``."""
    store = ArtifactStore()
    scales = ("train", "ref")
    extra = {"stage": "profile", "scale": "train"}
    expected = fingerprint(
        {
            "code": code_version(),
            "bench": tiny_bench,
            "sources": {
                scale: benchmark_fingerprint(tiny_bench, scale)
                for scale in scales
            },
            **extra,
        }
    )
    assert store.stage_key(tiny_bench, scales, extra) == expected


def test_memory_only_store():
    store = ArtifactStore()
    assert store.cache is None
    assert store.load("module", "k") is None
    assert store.store("module", "k", {"x": 1}) is False
    counters = store.counters()
    assert counters["artifacts"]["module"] == {
        "hits": 0, "misses": 1, "stores": 0,
    }
    assert store.warm_hits == 0


def test_disk_roundtrip_and_counters(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    assert store.load("profile", "key1") is None  # miss
    assert store.store("profile", "key1", {"v": 42}) is True
    assert store.load("profile", "key1") == {"v": 42}  # hit
    counters = store.counters()["artifacts"]["profile"]
    assert counters == {"hits": 1, "misses": 1, "stores": 1}
    assert store.warm_hits == 1


def test_store_accepts_cache_instance(tmp_path):
    cache = EvaluationCache(tmp_path / "cache")
    store = ArtifactStore(cache)
    assert store.cache is cache
    store.store("module", "k", {"a": 1})
    # Same directory through a second store: the artifact is shared.
    other = ArtifactStore(EvaluationCache(tmp_path / "cache"))
    assert other.load("module", "k") == {"a": 1}


def test_runner_hits_pre_refactor_warm_cache(tmp_path, tiny_bench):
    """A cache dir written by one runner serves a fresh runner entirely
    from disk -- the hit/miss parity contract of the refactor."""
    from repro.evaluation.runner import EvaluationRunner
    from repro.runtime.machine import MachineConfig

    cache_dir = tmp_path / "cache"
    machine = MachineConfig(cores=4)

    cold = EvaluationRunner(machine, cache=EvaluationCache(cache_dir))
    cold_run = cold.helix_run(tiny_bench)
    cold_counters = cold.artifacts.counters()["artifacts"]
    assert all(row["hits"] == 0 for row in cold_counters.values())
    assert sum(row["stores"] for row in cold_counters.values()) > 0

    warm = EvaluationRunner(machine, cache=EvaluationCache(cache_dir))
    warm_run = warm.helix_run(tiny_bench)
    warm_counters = warm.artifacts.counters()["artifacts"]
    assert sum(row["hits"] for row in warm_counters.values()) > 0
    assert all(row["misses"] == 0 for row in warm_counters.values())
    assert all(row["stores"] == 0 for row in warm_counters.values())

    assert warm_run.speedup == cold_run.speedup
    assert warm_run.parallel.cycles == cold_run.parallel.cycles
    assert list(warm_run.parallel.result.output) == list(
        cold_run.parallel.result.output
    )


def test_schedule_memo_accounting():
    store = ArtifactStore()
    memo = store.schedule_memo()
    assert isinstance(memo, ScheduleMemo)
    memo["machine-a"] = [object(), object()]
    memo["machine-b"] = [object()]
    assert memo.occupancy() == {"machines": 2, "columns": 3}
    other = store.schedule_memo()
    other["machine-a"] = [object()]
    schedules = store.counters()["schedules"]
    assert schedules == {"memos": 2, "machines": 3, "columns": 4}


def test_executor_schedules_live_in_store_memo():
    """The runner's executors memoize schedule columns inside a
    store-registered namespace, so store counters see them."""
    from repro.evaluation.runner import EvaluationRunner

    runner = EvaluationRunner()
    runner.helix_run("mcf")
    schedules = runner.artifacts.counters()["schedules"]
    assert schedules["memos"] >= 1
    assert schedules["columns"] > 0
