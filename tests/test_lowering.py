"""Tests for AST -> IR lowering, checked through execution semantics.

Each program is compiled and interpreted; the printed output is compared
against the value C semantics would produce.  This exercises the whole
frontend pipeline end to end.
"""

import pytest

from repro.frontend import MiniCError, compile_source
from repro.ir import verify_module
from repro.runtime import run_module


def run(source):
    module = compile_source(source)
    return run_module(module).output


def run_main(body, decls=""):
    return run(f"{decls}\nvoid main() {{ {body} }}")


class TestExpressions:
    def test_arithmetic(self):
        assert run_main("print(2 + 3 * 4 - 1);") == ["13"]

    def test_division_truncates_toward_zero(self):
        assert run_main("print(-7 / 2);") == ["-3"]
        assert run_main("print(7 / -2);") == ["-3"]

    def test_modulo_keeps_dividend_sign(self):
        assert run_main("print(-7 % 3);") == ["-1"]
        assert run_main("print(7 % -3);") == ["1"]

    def test_bitwise(self):
        assert run_main("print(6 & 3); print(6 | 3); print(6 ^ 3);") == [
            "2",
            "7",
            "5",
        ]

    def test_shifts(self):
        assert run_main("print(1 << 10); print(1024 >> 3);") == ["1024", "128"]

    def test_comparisons(self):
        assert run_main("print(3 < 4); print(4 <= 3); print(5 == 5);") == [
            "1",
            "0",
            "1",
        ]

    def test_unary(self):
        assert run_main("int x = 5; print(-x); print(!x); print(!0);") == [
            "-5",
            "0",
            "1",
        ]

    def test_float_arithmetic(self):
        assert run_main("float f = 1.5; print(f * 2.0 + 0.25);") == ["3.25"]

    def test_int_float_promotion(self):
        assert run_main("int i = 3; print(i / 2); print(i / 2.0);") == [
            "1",
            "1.5",
        ]

    def test_float_to_int_assignment_truncates(self):
        assert run_main("int x = 0; x = 7 / 2.0; print(x);") == ["3"]


class TestShortCircuit:
    def test_and_skips_rhs(self):
        # RHS would divide by zero if evaluated.
        source = """
        int z = 0;
        void main() {
            int guard = 0;
            if (guard && 10 / z > 0) { print(1); } else { print(2); }
        }
        """
        assert run(source) == ["2"]

    def test_or_skips_rhs(self):
        source = """
        int z = 0;
        void main() {
            if (1 || 10 / z > 0) { print(1); } else { print(2); }
        }
        """
        assert run(source) == ["1"]

    def test_result_is_normalized(self):
        assert run_main("print(2 && 3); print(0 || 7);") == ["1", "1"]


class TestControlFlow:
    def test_if_else_chains(self):
        body = """
        int x = 2;
        if (x == 1) { print(10); }
        else { if (x == 2) { print(20); } else { print(30); } }
        """
        assert run_main(body) == ["20"]

    def test_while_loop(self):
        assert run_main("int i = 0; int s = 0; while (i < 5) { s += i; i++; } print(s);") == ["10"]

    def test_for_loop(self):
        assert run_main("int s = 0; int i; for (i = 1; i <= 4; i++) { s *= 2; s += i; } print(s);") == ["26"]

    def test_break(self):
        body = "int i; for (i = 0; i < 100; i++) { if (i == 3) { break; } } print(i);"
        assert run_main(body) == ["3"]

    def test_continue(self):
        body = """
        int s = 0; int i;
        for (i = 0; i < 6; i++) { if (i % 2 == 0) { continue; } s += i; }
        print(s);
        """
        assert run_main(body) == ["9"]

    def test_nested_loops_with_break(self):
        body = """
        int total = 0; int i; int j;
        for (i = 0; i < 4; i++) {
            for (j = 0; j < 10; j++) {
                if (j > i) { break; }
                total++;
            }
        }
        print(total);
        """
        assert run_main(body) == ["10"]

    def test_early_return(self):
        source = """
        int pick(int x) {
            if (x > 0) { return 1; }
            return -1;
        }
        void main() { print(pick(5)); print(pick(-5)); }
        """
        assert run(source) == ["1", "-1"]

    def test_fall_off_non_void_returns_zero(self):
        source = """
        int weird(int x) { if (x > 0) { return 7; } }
        void main() { print(weird(0)); }
        """
        assert run(source) == ["0"]


class TestArraysAndGlobals:
    def test_global_scalar_update(self):
        assert run_main("g = 5; g += 2; print(g);", decls="int g;") == ["7"]

    def test_global_array(self):
        body = "int i; for (i = 0; i < 4; i++) { a[i] = i * i; } print(a[3]);"
        assert run_main(body, decls="int a[4];") == ["9"]

    def test_global_initializer(self):
        assert run_main("print(a[0] + a[2]);", decls="int a[3] = {10, 20, 30};") == ["40"]

    def test_local_array(self):
        body = "int buf[4]; buf[1] = 11; buf[2] = buf[1] + 1; print(buf[2]);"
        assert run_main(body) == ["12"]

    def test_compound_assign_to_element(self):
        assert run_main("a[1] = 5; a[1] *= 3; print(a[1]);", decls="int a[2];") == ["15"]

    def test_local_scalars_shadow_globals(self):
        source = """
        int x = 100;
        void main() { int x = 5; print(x); }
        """
        assert run(source) == ["5"]

    def test_block_scoping(self):
        body = "int x = 1; if (1) { int x = 2; print(x); } print(x);"
        assert run_main(body) == ["2", "1"]


class TestPointers:
    def test_address_of_and_deref(self):
        body = "int *p = &a[1]; *p = 42; print(a[1]);"
        assert run_main(body, decls="int a[4];") == ["42"]

    def test_pointer_indexing(self):
        body = "int *p = &a[1]; p[2] = 9; print(a[3]);"
        assert run_main(body, decls="int a[4];") == ["9"]

    def test_pointer_arithmetic(self):
        body = "int *p = a; int *q = p + 2; *q = 5; print(a[2]);"
        assert run_main(body, decls="int a[4];") == ["5"]

    def test_array_decay_to_param(self):
        source = """
        int a[4];
        void fill(int *p, int n) {
            int i;
            for (i = 0; i < n; i++) { p[i] = i + 1; }
        }
        void main() { fill(a, 4); print(a[0] + a[3]); }
        """
        assert run(source) == ["5"]

    def test_pointer_to_local_array(self):
        source = """
        int sum3(int *p) { return p[0] + p[1] + p[2]; }
        void main() {
            int buf[3];
            buf[0] = 1; buf[1] = 2; buf[2] = 3;
            print(sum3(buf));
        }
        """
        assert run(source) == ["6"]

    def test_address_of_global_scalar(self):
        source = """
        int g;
        void main() { int *p = &g; *p = 77; print(g); }
        """
        assert run(source) == ["77"]


class TestFunctions:
    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { print(fib(10)); }
        """
        assert run(source) == ["55"]

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        void main() { print(0); }
        """
        # Forward declarations are not supported; mutual recursion must be
        # avoided -- verify the error is a clean diagnostic.
        with pytest.raises(MiniCError):
            compile_source(source)

    def test_float_return(self):
        source = """
        float half(int x) { return x / 2.0; }
        void main() { print(half(5)); }
        """
        assert run(source) == ["2.5"]

    def test_argument_coercion(self):
        source = """
        float f(float x) { return x + 0.5; }
        void main() { print(f(2)); }
        """
        assert run(source) == ["2.5"]


class TestDiagnostics:
    def test_undeclared_identifier(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { x = 1; }")

    def test_redeclaration(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { int x; int x; }")

    def test_call_undefined_function(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { foo(); }")

    def test_wrong_arg_count(self):
        with pytest.raises(MiniCError):
            compile_source("int f(int a) { return a; } void main() { f(); }")

    def test_assign_to_array_name(self):
        with pytest.raises(MiniCError):
            compile_source("int a[3]; void main() { a = 1; }")

    def test_deref_non_pointer(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { int x; *x = 1; }")

    def test_break_outside_loop(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { break; }")

    def test_return_value_from_void(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { return 1; }")

    def test_missing_return_value(self):
        with pytest.raises(MiniCError):
            compile_source("int f() { return; } void main() { }")

    def test_no_main(self):
        with pytest.raises(MiniCError):
            compile_source("int f() { return 0; }")

    def test_address_of_register_variable(self):
        with pytest.raises(MiniCError):
            compile_source("void main() { int x; int *p = &x; }")


class TestVerifiedOutput:
    def test_all_lowered_modules_verify(self):
        source = """
        int data[16];
        int process(int *p, int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (p[i] % 2 == 0 && p[i] > 0) { s += p[i]; }
            }
            return s;
        }
        void main() {
            int i;
            for (i = 0; i < 16; i++) { data[i] = i - 4; }
            print(process(data, 16));
        }
        """
        module = compile_source(source)
        verify_module(module)
        assert run_module(module).output == ["30"]
