"""Unit tests of the compact trace representation and its serialization."""

import json

import pytest

from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.frontend import compile_source
from repro.runtime.machine import MachineConfig
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.trace import (
    CTRL_DEP,
    TRACE_FORMAT_VERSION,
    CompactInvocationTrace,
    InvocationTrace,
    IterationTrace,
    as_compact,
)


def _tricky_trace() -> InvocationTrace:
    """Every event kind, with duplicates and non-forwarded consumers."""
    return InvocationTrace(
        loop_id=("main", "for.header"),
        start_cycles=100,
        end_cycles=700,
        loads=9,
        iterations=[
            IterationTrace(
                start_cycles=100,
                end_cycles=300,
                events=[
                    ("w", 3, 110),
                    ("w", 3, 115),  # duplicate wait
                    ("p", 5, 140),
                    ("s", 3, 180),
                    ("s", 3, 185),  # duplicate signal
                    ("n", CTRL_DEP, 200),
                    ("n", CTRL_DEP, 205),  # duplicate next_iter
                    ("x", 5, 250),  # nothing produced before: no transfer
                ],
                words={5: 2},
            ),
            IterationTrace(
                start_cycles=300,
                end_cycles=700,
                events=[
                    ("w", 3, 320),  # stallable: predecessor signalled 3
                    ("w", 7, 330),  # not stallable: 7 never signalled
                    ("x", 5, 360),  # transfers: predecessor produced 5
                    ("x", 5, 365),  # duplicate consumer: no second pay
                    ("s", 3, 400),
                    ("s", 9, 420),  # signal without a wait: no segment
                    ("n", CTRL_DEP, 500),
                ],
                words={5: 2},
            ),
        ],
    )


def _zero_iteration_trace() -> InvocationTrace:
    return InvocationTrace(
        loop_id=("main", "while.header"),
        start_cycles=40,
        end_cycles=55,
        loads=0,
        iterations=[],
    )


class TestPacking:
    def test_pack_is_lossless(self):
        for trace in (_tricky_trace(), _zero_iteration_trace()):
            compact = CompactInvocationTrace.from_trace(trace)
            assert compact.to_invocation_trace() == trace
            assert compact.iteration_count == len(trace.iterations)
            assert compact.event_count == sum(
                len(it.events) for it in trace.iterations
            )

    def test_as_compact_normalizes_both_forms(self):
        trace = _tricky_trace()
        compact = as_compact(trace)
        assert isinstance(compact, CompactInvocationTrace)
        assert as_compact(compact) is compact

    def test_program_precomputes_machine_independent_stats(self):
        prog = CompactInvocationTrace.from_trace(_tricky_trace()).program
        # Raw waits (duplicates included), deduped signals per iteration.
        assert prog.waits == 4
        assert prog.signals == 3  # {3} in iteration 0, {3, 9} in iteration 1
        assert prog.next_iters == 2
        assert prog.transfer_words == 2  # dep 5 transferred once, 2 words
        assert prog.has_next == (True, True)
        # MATCHED agendas: ordered-unique wait deps of each iteration.
        assert prog.agendas == ((3,), (3, 7))
        # Per-iteration sequential spans.
        assert list(prog.spans) == [200, 400]
        assert prog.active_ops > 0

    def test_doall_program_has_no_active_ops(self):
        trace = InvocationTrace(
            loop_id=("main", "for.header"),
            start_cycles=0,
            end_cycles=90,
            iterations=[
                IterationTrace(
                    start_cycles=30 * i,
                    end_cycles=30 * (i + 1),
                    events=[("n", CTRL_DEP, 30 * i + 5)],
                )
                for i in range(3)
            ],
        )
        prog = CompactInvocationTrace.from_trace(trace).program
        assert prog.active_ops == 0
        assert prog.waits == 0 and prog.signals == 0
        assert prog.transfer_words == 0


class TestSerialization:
    def test_versioned_roundtrip_through_json(self):
        for trace in (_tricky_trace(), _zero_iteration_trace()):
            compact = CompactInvocationTrace.from_trace(trace)
            payload = json.loads(json.dumps(compact.to_dict()))
            assert payload["format"] == TRACE_FORMAT_VERSION
            restored = CompactInvocationTrace.from_dict(payload)
            assert restored == compact
            assert restored.to_invocation_trace() == trace

    def test_legacy_dict_still_loads(self):
        trace = _tricky_trace()
        legacy_payload = json.loads(json.dumps(trace.to_dict()))
        assert "format" not in legacy_payload
        restored = CompactInvocationTrace.from_dict(legacy_payload)
        assert restored == CompactInvocationTrace.from_trace(trace)

    def test_unknown_format_rejected(self):
        payload = CompactInvocationTrace.from_trace(_tricky_trace()).to_dict()
        payload["format"] = TRACE_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported compact-trace"):
            CompactInvocationTrace.from_dict(payload)

    def test_serialized_form_omits_compiled_program(self):
        compact = CompactInvocationTrace.from_trace(_tricky_trace())
        compact.program  # force compilation
        payload = compact.to_dict()
        assert "program" not in payload
        # Equality ignores the lazily cached program.
        assert CompactInvocationTrace.from_dict(payload) == compact


class TestExecutorIntegration:
    def test_executor_records_compact_traces(self):
        source = """
        int acc;
        void main() {
            int i;
            for (i = 0; i < 20; i++) { acc = (acc + i * 3) % 1009; }
            print(acc);
        }
        """
        module = compile_source(source)
        loop_ids = [l.id for l in find_loops(module.functions["main"])]
        machine = MachineConfig(cores=4)
        transformed, infos = parallelize_module(module, loop_ids, machine)
        result = ParallelExecutor(transformed, infos, machine).execute()
        assert result.traces
        for trace in result.traces:
            assert isinstance(trace, CompactInvocationTrace)
            restored = CompactInvocationTrace.from_dict(
                json.loads(json.dumps(trace.to_dict()))
            )
            assert restored == trace
