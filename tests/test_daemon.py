"""End-to-end tests for the ``repro serve`` daemon and its client."""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.service import Orchestrator
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import Daemon, validate_event

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 30; i++) {
        int k = 0;
        int f = 0;
        while (k < 20) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""

SLOW_DELAY = 1.5


@pytest.fixture()
def tiny_bench(monkeypatch):
    from repro.bench import suite as bench_suite
    from repro.evaluation import runner as runner_mod

    def slow_source(scale):
        time.sleep(SLOW_DELAY)
        return PROGRAM

    spec = bench_suite.BenchmarkSpec(
        "tinyd", "synthetic daemon test bench",
        lambda scale: PROGRAM, 1.0, "test",
    )
    slow = bench_suite.BenchmarkSpec(
        "slowd", "synthetic slow daemon test bench",
        slow_source, 1.0, "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinyd", spec)
    monkeypatch.setitem(bench_suite.BENCHMARKS, "slowd", slow)
    monkeypatch.setattr(
        runner_mod, "benchmark_names", lambda: ["tinyd"]
    )
    return "tinyd"


@pytest.fixture()
def daemon(tmp_path, tiny_bench):
    socket_path = str(tmp_path / "repro.sock")
    log_path = str(tmp_path / "jobs.jsonl")
    orchestrator = Orchestrator(cache=tmp_path / "cache", workers=2)
    server = Daemon(
        orchestrator,
        socket_path=socket_path,
        drain_timeout=60.0,
        log_path=log_path,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.serve(install_signal_handlers=False)
        ),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(10)
    yield server
    server.request_stop()
    thread.join(30)
    assert not thread.is_alive()


def one_shot_run(bench, cores, cache_dir):
    """The one-shot CLI equivalent of a daemon ``run`` job."""
    from repro.evaluation.cache import EvaluationCache
    from repro.evaluation.runner import EvaluationRunner
    from repro.runtime.machine import MachineConfig

    runner = EvaluationRunner(
        MachineConfig(cores=cores), cache=EvaluationCache(cache_dir)
    )
    run = runner.helix_run(bench)
    return {
        "bench": bench,
        "cores": cores,
        "speedup": run.speedup,
        "cycles": run.parallel.cycles,
        "sequential_cycles": run.sequential.cycles,
        "output": list(run.parallel.result.output),
        "output_matches": run.output_matches,
        "chosen": [list(loop) for loop in run.chosen],
    }


def test_ping_and_stats(daemon):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        assert client.ping() is True
        stats = client.stats()
        assert validate_event(stats) == []
        assert stats["jobs"]["total"] == 0


def test_concurrent_clients_byte_identical(daemon, tiny_bench, tmp_path):
    """>= 8 concurrent clients all get byte-identical results, equal to
    the one-shot CLI pipeline's."""
    clients = 8
    results = [None] * clients
    errors = []

    def worker(index):
        try:
            with ServiceClient(socket_path=daemon.socket_path) as client:
                finished = client.run(
                    {"op": "run", "bench": tiny_bench, "cores": 4}
                )
                for event in finished["events"]:
                    assert validate_event(event) == []
                results[index] = finished["result"]
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not errors
    assert all(result is not None for result in results)

    blobs = {json.dumps(r, sort_keys=True) for r in results}
    assert len(blobs) == 1, "daemon results differ across clients"

    expected = one_shot_run(tiny_bench, 4, tmp_path / "oneshot-cache")
    assert json.dumps(results[0], sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_resubmission_hits_warm_store(daemon, tiny_bench):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        client.run({"op": "run", "bench": tiny_bench, "cores": 4})
        finished = client.run(
            {"op": "run", "bench": tiny_bench, "cores": 4}
        )
        hits = [
            event for event in finished["events"]
            if event["event"] == "artifact_stored"
            and event["outcome"] == "hit"
        ]
        assert hits, "resubmitted job saw no warm artifact hits"
        stats = client.stats()
        counters = stats["artifacts"]["artifacts"]
        assert sum(row["hits"] for row in counters.values()) > 0


def test_compile_and_trace_ops(daemon, tiny_bench):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        # The synthetic bench has no profitable loops; compile a real
        # one to see the transform actually fire.
        compiled = client.run({"op": "compile", "bench": "mcf", "cores": 4})
        assert compiled["result"]["parallelized"] >= 1
        traced = client.run({"op": "trace", "bench": tiny_bench})
        assert traced["result"]["spans"] > 0
        assert traced["result"]["output_matches"] is True


def test_suite_op_streams_bench_progress(daemon, tiny_bench):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        finished = client.run(
            {"op": "suite", "benches": [tiny_bench], "cores": 4}
        )
        assert finished["result"]["geomeans"]
        stages = [
            event for event in finished["events"]
            if event["event"] == "stage_completed"
        ]
        assert stages, "suite job streamed no stage events"


def test_cancel_queued_job(daemon, tiny_bench):
    """With both workers busy on slow jobs, a queued job can be
    cancelled before it ever runs."""
    with ServiceClient(socket_path=daemon.socket_path) as client:
        blockers = [
            client.request({"op": "run", "bench": "slowd", "cores": 2}),
            client.request({"op": "run", "bench": "slowd", "cores": 3}),
        ]
        victim = client.request(
            {"op": "run", "bench": tiny_bench, "cores": 4}
        )
        assert client.cancel(victim) is True
        finished = client.wait(victim)
        assert finished["state"] == "cancelled"
        for job in blockers:
            done = client.wait(job)
            assert done["state"] == "done"


def test_bad_requests_get_errors(daemon):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "explode"})
        with pytest.raises(ServiceError, match="bad run request"):
            client.request({"op": "run"})
        with pytest.raises(ServiceError, match="unknown benchmark"):
            client.run({"op": "run", "bench": "does-not-exist"})


def test_job_log_written(daemon, tiny_bench):
    with ServiceClient(socket_path=daemon.socket_path) as client:
        client.run({"op": "run", "bench": tiny_bench, "cores": 4})
    lines = [
        json.loads(line)
        for line in open(daemon.log_path, encoding="utf-8")
    ]
    assert any(event["event"] == "accepted" for event in lines)
    assert any(event["event"] == "job_finished" for event in lines)
    for event in lines:
        assert validate_event(event) == []


@pytest.fixture()
def obs_daemon(tmp_path, tiny_bench):
    """A daemon with the full observability plane on: per-job traces,
    fast heartbeat, job log."""
    socket_path = str(tmp_path / "obs.sock")
    orchestrator = Orchestrator(cache=tmp_path / "cache", workers=2)
    server = Daemon(
        orchestrator,
        socket_path=socket_path,
        drain_timeout=60.0,
        log_path=str(tmp_path / "jobs.jsonl"),
        trace_dir=str(tmp_path / "traces"),
        heartbeat=0.2,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.serve(install_signal_handlers=False)
        ),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(10)
    yield server
    server.request_stop()
    thread.join(30)
    assert not thread.is_alive()


def test_status_rpc_schema_and_queue_depth(obs_daemon, tiny_bench):
    with ServiceClient(socket_path=obs_daemon.socket_path) as client:
        status = client.status()
        assert validate_event(status) == []
        assert status["run"] == obs_daemon.run_id
        assert status["uptime_seconds"] >= 0
        assert status["workers"] == {"configured": 2, "alive": 2}
        assert status["accepting"] is True
        assert set(status["queue"]) == {
            "queued", "running", "done", "failed", "cancelled",
        }
        assert all(count == 0 for count in status["queue"].values())
        # Saturate both workers with slow jobs plus one queued job, then
        # check the live depth gauges add up.
        jobs = [
            client.request({"op": "run", "bench": "slowd", "cores": c})
            for c in (2, 3, 4)
        ]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            status = client.status()
            if status["queue"]["running"] == 2:
                break
            time.sleep(0.05)
        assert status["queue"]["running"] == 2
        assert status["queue"]["queued"] == 1
        in_flight = status["in_flight"]
        assert len(in_flight) == 2
        for entry in in_flight:
            assert entry["op"] == "run"
            assert entry["bench"] == "slowd"
            assert entry["age_seconds"] >= 0
        for job in jobs:
            client.wait(job)
        status = client.status()
        assert status["queue"]["done"] == 3
        assert status["queue"]["running"] == 0
        assert status["in_flight"] == []


def test_traced_job_writes_valid_perfetto_file(obs_daemon, tiny_bench):
    from repro.obs import validate_chrome_trace

    with ServiceClient(socket_path=obs_daemon.socket_path) as client:
        finished = client.run(
            {"op": "run", "bench": tiny_bench, "cores": 4, "trace": True}
        )
        trace_path = finished.get("trace_path")
        assert trace_path, "traced job published no trace_path"
        payload = json.loads(open(trace_path, encoding="utf-8").read())
        assert validate_chrome_trace(payload) == []
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert spans, "trace has no spans"
        assert payload["otherData"]["metrics"] == finished["metrics"]
        # The dedicated trace op gets a file too.
        traced = client.run({"op": "trace", "bench": tiny_bench})
        assert traced.get("trace_path")
        assert validate_chrome_trace(
            json.loads(open(traced["trace_path"], encoding="utf-8").read())
        ) == []
        # An untraced job does not.
        plain = client.run({"op": "run", "bench": tiny_bench, "cores": 4})
        assert "trace_path" not in plain


def test_job_metrics_are_per_job_deltas(obs_daemon, tiny_bench):
    """Two jobs on a warm store must not double-count each other's work:
    each terminal event carries only its own attempt's delta."""
    with ServiceClient(socket_path=obs_daemon.socket_path) as client:
        cold = client.run({"op": "run", "bench": tiny_bench, "cores": 4})
        warm = client.run({"op": "run", "bench": tiny_bench, "cores": 4})
    cold_counters = cold["metrics"]["counters"]
    warm_counters = warm["metrics"]["counters"]
    # The cold attempt compiles and executes from scratch; the warm
    # resubmission is served from the artifact store.  Each terminal
    # event must carry only its own attempt's delta: pre-isolation,
    # job.metrics was a shared-registry snapshot, which would have
    # replayed the cold job's computes in the warm job too.
    assert cold_counters.get("stage.execute.computes", 0) >= 1
    assert cold_counters.get("interp.codegen.functions", 0) >= 1
    assert warm_counters.get("stage.execute.computes", 0) == 0
    assert warm_counters.get("interp.codegen.functions", 0) == 0
    assert warm_counters.get("stage.execute.disk_hits", 0) >= 1
    cold_store_misses = sum(
        v for k, v in cold_counters.items()
        if k.startswith("evalcache.misses.")
    )
    warm_store_misses = sum(
        v for k, v in warm_counters.items()
        if k.startswith("evalcache.misses.")
    )
    assert cold_store_misses >= 1
    assert warm_store_misses == 0


def test_log_has_seq_run_and_heartbeats(obs_daemon, tiny_bench):
    with ServiceClient(socket_path=obs_daemon.socket_path) as client:
        client.run({"op": "run", "bench": tiny_bench, "cores": 4})
        time.sleep(0.5)  # let at least one more heartbeat land
    lines = [
        json.loads(line)
        for line in open(obs_daemon.log_path, encoding="utf-8")
    ]
    assert lines
    seqs = [line["seq"] for line in lines]
    assert seqs == list(range(1, len(lines) + 1)), "seq not monotonic"
    assert {line["run"] for line in lines} == {obs_daemon.run_id}
    kinds = [line["event"] for line in lines]
    assert "heartbeat" in kinds
    assert kinds[0] == "heartbeat", "first heartbeat should be immediate"
    assert "trace_written" not in kinds  # no traced jobs in this test
    for line in lines:
        payload = {
            k: v for k, v in line.items() if k not in ("seq", "run")
        }
        assert validate_event(payload) == []
    beats = [line for line in lines if line["event"] == "heartbeat"]
    assert all(
        "queue" in beat and "workers" in beat and beat["uptime_seconds"] >= 0
        for beat in beats
    )


def test_graceful_drain(tmp_path, tiny_bench):
    """request_stop (the SIGTERM path) finishes in-flight jobs, tears
    the workers down, and removes the socket."""
    socket_path = str(tmp_path / "drain.sock")
    orchestrator = Orchestrator(cache=tmp_path / "cache", workers=2)
    server = Daemon(orchestrator, socket_path=socket_path, drain_timeout=60)
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.serve(install_signal_handlers=False)
        ),
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(10)

    client = ServiceClient(socket_path=socket_path)
    job = client.request({"op": "run", "bench": "slowd", "cores": 4})
    server.request_stop()
    # The in-flight job still completes and streams its terminal event.
    finished = client.wait(job)
    assert finished["state"] == "done"
    client.close()
    thread.join(30)
    assert not thread.is_alive()
    assert not os.path.exists(socket_path)
    # Workers were joined; a fresh submit is refused.
    with pytest.raises(RuntimeError):
        orchestrator.submit(
            __import__("repro.service.jobs", fromlist=["RunJob"]).RunJob(
                "tinyd"
            )
        )
