"""Fuzzing `validate_event` and `check_event_ordering` against
malformed, truncated, and out-of-order event streams.

The daemon's JSON-lines protocol is consumed by CI (`serve-smoke`
validates every logged line) and by external clients, so the two
validators must reject anything shaped wrong without ever crashing --
these tests drive them with hypothesis-generated garbage alongside
deterministic known-bad cases.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.daemon import PROTOCOL_VERSION, validate_event
from repro.service.jobs import ObservedEvent, check_event_ordering

assert PROTOCOL_VERSION == 1

# -- strategy building blocks ------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

#: Well-formed events, per kind, with every required field present.
WELL_FORMED = {
    "accepted": {"event": "accepted", "job": "j1", "op": "run"},
    "job_started": {
        "event": "job_started", "job": "j1", "op": "run", "retries": 0,
    },
    "stage_completed": {
        "event": "stage_completed", "job": "j1", "bench": "mcf",
        "stage": "compile", "outcome": "compute", "seconds": 0.5,
    },
    "artifact_stored": {
        "event": "artifact_stored", "job": "j1", "kind": "pipeline",
        "key": "ab12", "outcome": "store",
    },
    "job_finished": {
        "event": "job_finished", "job": "j1", "state": "failed",
        "retries": 0,
    },
    "stats": {"event": "stats", "jobs": {}, "artifacts": {}},
    "status": {
        "event": "status", "run": "r1", "uptime_seconds": 1.0,
        "queue": {}, "workers": {}, "metrics": {},
    },
    "heartbeat": {
        "event": "heartbeat", "uptime_seconds": 1.0, "queue": {},
        "workers": {},
    },
    "trace_written": {"event": "trace_written", "job": "j1", "path": "t.json"},
    "cancelled": {"event": "cancelled", "job": "j1"},
    "error": {"event": "error", "message": "boom"},
    "pong": {"event": "pong"},
    "draining": {"event": "draining"},
}


class TestValidateEventDeterministic:
    def test_every_known_kind_validates(self):
        for kind, event in WELL_FORMED.items():
            assert validate_event(event) == [], kind

    def test_done_requires_result(self):
        done = dict(WELL_FORMED["job_finished"], state="done")
        assert validate_event(done) == ["done job_finished missing result"]
        done["result"] = {"ok": True}
        assert validate_event(done) == []

    def test_non_object_rejected(self):
        for junk in (None, 7, "event", ["event"], 3.5, True):
            assert validate_event(junk) == ["event is not an object"]

    def test_missing_or_bad_kind(self):
        assert validate_event({}) == ["missing event kind"]
        assert validate_event({"event": ""}) == ["missing event kind"]
        assert validate_event({"event": 42}) == ["missing event kind"]
        assert validate_event({"event": "wat"}) == [
            "unknown event kind 'wat'"
        ]

    def test_each_required_field_reported_when_missing(self):
        for kind, event in WELL_FORMED.items():
            for field in event:
                if field == "event":
                    continue
                mutilated = {k: v for k, v in event.items() if k != field}
                problems = validate_event(mutilated)
                assert any(field in p for p in problems), (kind, field)

    def test_log_line_wrapping_stays_valid(self):
        # The daemon's log wraps events with seq/run; extra fields must
        # not trip validation (forward-compatible schema).
        wrapped = {"seq": 3, "run": "abc", **WELL_FORMED["heartbeat"]}
        assert validate_event(wrapped) == []


class TestValidateEventFuzz:
    @given(st.recursive(
        json_scalars,
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(st.text(max_size=8), inner, max_size=4),
        ),
        max_leaves=12,
    ))
    @settings(max_examples=200, deadline=None)
    def test_never_crashes_on_arbitrary_json(self, payload):
        problems = validate_event(payload)
        assert isinstance(problems, list)
        assert all(isinstance(p, str) for p in problems)

    @given(
        kind=st.sampled_from(sorted(WELL_FORMED)),
        dropped=st.sets(st.text(max_size=12), max_size=3),
        extra=st.dictionaries(
            st.text(min_size=1, max_size=8), json_scalars, max_size=3
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncated_events_flag_exactly_the_missing_fields(
        self, kind, dropped, extra
    ):
        event = dict(WELL_FORMED[kind])
        required = set(event) - {"event"}
        for field in dropped:
            event.pop(field, None)
        for key, value in extra.items():
            event.setdefault(key, value)
        problems = validate_event(event)
        missing = required - set(event)
        if kind == "job_finished" and event.get("state") == "done":
            pass  # the result-presence rule may add one more problem
        else:
            assert len(problems) == len(missing)
        for field in missing:
            assert any(field in p for p in problems)

    @given(st.text(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_truncated_wire_lines_fail_parse_or_validate(self, prefix):
        # A truncated JSON line either fails to parse (the daemon
        # answers with an error event) or parses to something
        # validate_event can classify -- never a crash.
        line = json.dumps(WELL_FORMED["job_started"])[: len(prefix) % 40]
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return
        assert isinstance(validate_event(payload), list)


# -- event-ordering fuzz -----------------------------------------------------


def make_events(kinds, retries_seq=None):
    events = []
    starts = 0
    for kind in kinds:
        args = {}
        if kind == "job_started":
            if retries_seq is not None and starts < len(retries_seq):
                args["retries"] = retries_seq[starts]
            else:
                args["retries"] = starts
            starts += 1
        events.append(ObservedEvent(kind=kind, job_id="j1", args=args))
    return events


WELL_ORDERED = [
    ["job_started", "job_finished"],
    ["job_started", "stage_completed", "artifact_stored", "job_finished"],
    ["job_started", "stage_completed", "job_started", "job_finished"],
]


class TestCheckEventOrdering:
    def test_well_ordered_streams_pass(self):
        for kinds in WELL_ORDERED:
            assert check_event_ordering(make_events(kinds)) == [], kinds

    def test_empty_stream(self):
        assert check_event_ordering([]) == ["empty event stream"]

    def test_truncated_stream_missing_finish(self):
        problems = check_event_ordering(
            make_events(["job_started", "stage_completed"])
        )
        assert any("job_finished" in p for p in problems)

    def test_headless_stream(self):
        problems = check_event_ordering(
            make_events(["stage_completed", "job_finished"])
        )
        assert any("not job_started" in p for p in problems)

    def test_double_finish(self):
        problems = check_event_ordering(
            make_events(["job_started", "job_finished", "job_finished"])
        )
        assert any("job_finished events" in p for p in problems)

    def test_retries_must_increase_from_zero(self):
        bad = make_events(
            ["job_started", "job_started", "job_finished"],
            retries_seq=[1, 0],
        )
        problems = check_event_ordering(bad)
        assert any("retries" in p for p in problems)

    @given(
        st.lists(
            st.sampled_from(
                ["job_started", "stage_completed", "artifact_stored",
                 "job_finished"]
            ),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_fuzz_never_crashes_and_accepts_only_contracts(self, kinds):
        problems = check_event_ordering(make_events(kinds))
        assert isinstance(problems, list)
        well_formed = (
            bool(kinds)
            and kinds[0] == "job_started"
            and kinds[-1] == "job_finished"
            and kinds.count("job_finished") == 1
        )
        if well_formed:
            assert problems == []
        else:
            assert problems

    @given(st.permutations(
        ["job_started", "stage_completed", "artifact_stored", "job_finished"]
    ))
    @settings(max_examples=24, deadline=None)
    def test_out_of_order_permutations(self, kinds):
        problems = check_event_ordering(make_events(list(kinds)))
        in_order = kinds[0] == "job_started" and kinds[-1] == "job_finished"
        assert (problems == []) == in_order
