"""Tests for Step 6: signal minimization and Theorem 1."""

import networkx as nx

from repro.analysis.cfg import CFGView
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.loops import find_loops
from repro.core.segments import insert_synchronization
from repro.core.signals import (
    apply_theorem1,
    build_redundance_graph,
    optimize_signals,
)
from repro.frontend import compile_source
from repro.ir import Opcode
from repro.runtime import run_module


def prepare(source):
    module = compile_source(source)
    func = module.functions["main"]
    loop = next(iter(find_loops(func)))
    deps = DependenceAnalysis(module).loop_dependences(func, loop)
    syncs = insert_synchronization(func, loop, deps)
    return module, func, loop, syncs


MULTI_ACC = """
int a;
int b;
int c;
void main() {
    int i;
    for (i = 0; i < 8; i++) {
        int w = i * 3;
        a = a + w;
        b = b + (w & 7);
        c = c ^ w;
    }
}
"""


class TestTheorem1:
    def test_keep_sources_and_one_per_cycle(self):
        graph = nx.DiGraph()
        # d0 covers d1, and d2/d3 form a cycle.
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(3, 2)
        keep = apply_theorem1(graph)
        assert 0 in keep
        assert 1 not in keep
        assert len(keep & {2, 3}) == 1

    def test_isolated_nodes_kept(self):
        graph = nx.DiGraph()
        graph.add_node(5)
        assert apply_theorem1(graph) == {5}

    def test_chain_keeps_only_root(self):
        graph = nx.DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert apply_theorem1(graph) == {0}


class TestRedundanceGraph:
    def test_colocated_accumulators_form_cycles(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        assert len([s for s in syncs if s.synchronized]) >= 3
        cfg = CFGView(func)
        graph = build_redundance_graph(func, loop, cfg, syncs)
        # The three accumulators share one region; at least two of them
        # must be redundant due to another.
        assert graph.number_of_edges() >= 2


class TestOptimizeSignals:
    def test_merges_colocated_segments(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        stats = optimize_signals(func, loop, syncs)
        active = [s for s in syncs if s.synchronized]
        assert len(active) == 1
        assert stats["removed_waits"] > 0

    def test_covered_by_recorded(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        optimize_signals(func, loop, syncs)
        covered = [s for s in syncs if not s.synchronized and s.covered_by is not None]
        assert covered
        keeper = {s.dep.index for s in syncs if s.synchronized}
        assert all(s.covered_by in keeper for s in covered)

    def test_dropped_deps_have_no_sync_ops(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        optimize_signals(func, loop, syncs)
        live_dep_ids = {
            i.dep_id
            for i in func.instructions()
            if i.opcode in (Opcode.WAIT, Opcode.SIGNAL)
        }
        for sync in syncs:
            if not sync.synchronized:
                assert sync.dep.index not in live_dep_ids

    def test_functionally_inert(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        optimize_signals(func, loop, syncs)
        baseline = run_module(compile_source(MULTI_ACC))
        assert run_module(module).output == baseline.output

    def test_waits_still_precede_endpoints(self):
        module, func, loop, syncs = prepare(MULTI_ACC)
        optimize_signals(func, loop, syncs)
        keeper = next(s for s in syncs if s.synchronized)
        # The keeper guards every dropped dep's endpoints: within each
        # block its wait comes before any guarded endpoint.
        guarded_uids = set()
        for sync in syncs:
            for e in sync.dep.endpoints():
                guarded_uids.add(e.uid)
        for name in loop.blocks:
            seen_wait = False
            for instr in func.blocks[name].instructions:
                if (
                    instr.opcode is Opcode.WAIT
                    and instr.dep_id == keeper.dep.index
                ):
                    seen_wait = True
                if instr.uid in guarded_uids and not seen_wait:
                    raise AssertionError(
                        f"endpoint unguarded in block {name}"
                    )

    def test_disjoint_segments_not_merged(self):
        # Two accumulators separated by a conditional: different regions.
        source = """
        int a;
        int b;
        void main() {
            int i;
            for (i = 0; i < 8; i++) {
                if (i % 2 == 0) {
                    a = a + i;
                } else {
                    b = b + i;
                }
            }
        }
        """
        module, func, loop, syncs = prepare(source)
        optimize_signals(func, loop, syncs)
        active = [s for s in syncs if s.synchronized]
        # a's region and b's region are on different branches -> both kept.
        assert len(active) == 2

    def test_redundant_wait_elimination_on_branches(self):
        # One accumulator consumed on both branch arms: insertion places
        # waits on each arm plus before signals; availability analysis
        # must not leave duplicated waits along any single path.
        source = """
        int a;
        void main() {
            int i;
            for (i = 0; i < 8; i++) {
                if (i % 2 == 0) { a = a + 1; } else { a = a + 2; }
                print(a);
            }
        }
        """
        module, func, loop, syncs = prepare(source)
        before = sum(len(s.wait_instrs) for s in syncs)
        optimize_signals(func, loop, syncs)
        after = sum(
            len(s.wait_instrs) for s in syncs if s.synchronized
        )
        assert after < before
