"""Tests for the IR structural verifier."""

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    IRVerificationError,
    Module,
    Opcode,
    verify_function,
    verify_module,
)
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type


def empty_main():
    module = Module()
    func = Function("main")
    block = func.new_block("entry")
    block.append(Instruction(Opcode.RET))
    module.add_function(func)
    return module, func


def test_clean_module_passes():
    module, _ = empty_main()
    verify_module(module)


def test_missing_terminator_detected():
    module, func = empty_main()
    func.new_block("dangling")
    errors = verify_function(func, module)
    assert any("lacks a terminator" in e for e in errors)


def test_branch_to_unknown_block():
    module, func = empty_main()
    extra = func.new_block("x")
    extra.append(Instruction(Opcode.BR, targets=("nowhere",)))
    errors = verify_function(func, module)
    assert any("unknown block" in e for e in errors)


def test_terminator_in_middle_detected():
    module, func = empty_main()
    block = func.blocks["entry0"]
    block.instructions.insert(0, Instruction(Opcode.RET))
    errors = verify_function(func, module)
    assert any("terminator not at block end" in e for e in errors)


def test_bad_arity_detected():
    module, func = empty_main()
    block = func.blocks["entry0"]
    block.instructions.insert(
        0,
        Instruction(Opcode.ADD, dest=func.new_vreg(Type.INT), args=(Const.int(1),)),
    )
    errors = verify_function(func, module)
    assert any("arity" in e for e in errors)


def test_missing_dest_detected():
    module, func = empty_main()
    block = func.blocks["entry0"]
    block.instructions.insert(
        0, Instruction(Opcode.ADD, args=(Const.int(1), Const.int(2)))
    )
    errors = verify_function(func, module)
    assert any("destination" in e for e in errors)


def test_call_to_unknown_function():
    module, func = empty_main()
    block = func.blocks["entry0"]
    block.instructions.insert(0, Instruction(Opcode.CALL, callee="ghost"))
    errors = verify_function(func, module)
    assert any("unknown function" in e for e in errors)


def test_call_arity_mismatch():
    module, func = empty_main()
    callee = Function("g")
    callee.add_param(Type.INT, "x")
    entry = callee.new_block("entry")
    entry.append(Instruction(Opcode.RET))
    module.add_function(callee)
    func.blocks["entry0"].instructions.insert(
        0, Instruction(Opcode.CALL, callee="g", args=())
    )
    errors = verify_function(func, module)
    assert any("arity" in e for e in errors)


def test_wait_without_dep_id():
    module, func = empty_main()
    func.blocks["entry0"].instructions.insert(0, Instruction(Opcode.WAIT))
    errors = verify_function(func, module)
    assert any("without dep_id" in e for e in errors)


def test_unknown_symbol_reference():
    module, func = empty_main()
    ghost = Symbol("ghost", Type.INT, 1)
    func.blocks["entry0"].instructions.insert(
        0,
        Instruction(
            Opcode.LOADG, dest=func.new_vreg(Type.INT), args=(ghost, Const.int(0))
        ),
    )
    errors = verify_function(func, module)
    assert any("unknown symbol" in e for e in errors)


def test_ret_with_value_in_void_function():
    module, func = empty_main()
    func.blocks["entry0"].instructions[-1] = Instruction(
        Opcode.RET, args=(Const.int(1),)
    )
    errors = verify_function(func, module)
    assert any("RET arity" in e for e in errors)


def test_verify_module_raises():
    module, func = empty_main()
    func.new_block("dangling")
    with pytest.raises(IRVerificationError):
        verify_module(module)
