"""Tests for the call graph and the Andersen pointer analysis."""

from repro.analysis.callgraph import build_callgraph
from repro.analysis.pointer import andersen_pointer_analysis, loc_key
from repro.frontend import compile_source
from repro.ir import Opcode
from repro.ir.types import Type


class TestCallGraph:
    SOURCE = """
    int c() { return 1; }
    int b() { return c(); }
    int a() { return b() + c(); }
    int rec(int n) { if (n > 0) { return rec(n - 1); } return 0; }
    void main() { print(a()); print(rec(3)); }
    """

    def test_edges(self):
        module = compile_source(self.SOURCE)
        graph = build_callgraph(module)
        assert graph.callees("a") == ["b", "c"]
        assert graph.callers("c") == ["a", "b"]

    def test_transitive_callees(self):
        module = compile_source(self.SOURCE)
        graph = build_callgraph(module)
        assert graph.transitive_callees("a") == {"b", "c"}
        assert graph.transitive_callees("main") == {"a", "b", "c", "rec"}

    def test_recursion_detection(self):
        module = compile_source(self.SOURCE)
        graph = build_callgraph(module)
        assert graph.is_recursive("rec")
        assert not graph.is_recursive("a")

    def test_call_sites_recorded(self):
        module = compile_source(self.SOURCE)
        graph = build_callgraph(module)
        assert len(graph.call_sites[("a", "c")]) == 1

    def test_functions_called_from_instructions(self):
        module = compile_source(self.SOURCE)
        graph = build_callgraph(module)
        main_instrs = list(module.functions["main"].instructions())
        called = graph.functions_called_from(main_instrs)
        assert called == {"a", "b", "c", "rec"}


class TestPointerAnalysis:
    def test_direct_lea(self):
        module = compile_source(
            """
            int data[8];
            void main() { int *p = &data[2]; *p = 1; }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["main"]
        store = next(
            i for i in func.instructions() if i.opcode is Opcode.STOREP
        )
        locs = pts.locations_accessed("main", store)
        assert locs == frozenset({(None, "data")})

    def test_flow_through_copy_and_arith(self):
        module = compile_source(
            """
            int data[8];
            void main() {
                int *p = data;
                int *q = p + 3;
                *q = 1;
            }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["main"]
        store = next(
            i for i in func.instructions() if i.opcode is Opcode.STOREP
        )
        assert pts.locations_accessed("main", store) == frozenset(
            {(None, "data")}
        )

    def test_flow_through_call_parameter(self):
        module = compile_source(
            """
            int a[4];
            int b[4];
            void write0(int *p) { p[0] = 1; }
            void main() { write0(a); write0(&b[1]); }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["write0"]
        store = next(
            i for i in func.instructions() if i.opcode is Opcode.STOREP
        )
        locs = pts.locations_accessed("write0", store)
        assert locs == frozenset({(None, "a"), (None, "b")})

    def test_distinct_arrays_do_not_alias(self):
        module = compile_source(
            """
            int a[4];
            int b[4];
            void main() {
                int *p = a;
                int *q = b;
                *p = 1;
                *q = 2;
            }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["main"]
        stores = [
            i for i in func.instructions() if i.opcode is Opcode.STOREP
        ]
        assert not pts.may_alias("main", stores[0], "main", stores[1])

    def test_local_arrays_tracked_per_function(self):
        module = compile_source(
            """
            void main() {
                int buf[4];
                int *p = buf;
                *p = 5;
                print(buf[0]);
            }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["main"]
        store = next(
            i for i in func.instructions() if i.opcode is Opcode.STOREP
        )
        assert pts.locations_accessed("main", store) == frozenset(
            {("main", "buf")}
        )

    def test_direct_ops_use_symbol_exactly(self):
        module = compile_source(
            """
            int g[4];
            void main() { g[1] = 2; print(g[1]); }
            """
        )
        pts = andersen_pointer_analysis(module)
        func = module.functions["main"]
        store = next(
            i for i in func.instructions() if i.opcode is Opcode.STOREG
        )
        load = next(i for i in func.instructions() if i.opcode is Opcode.LOADG)
        assert pts.may_alias("main", store, "main", load)

    def test_unknown_pointer_falls_back_to_everything(self):
        module = compile_source(
            """
            int a[2];
            void main() { a[0] = 1; }
            """
        )
        pts = andersen_pointer_analysis(module)
        from repro.ir.operands import VReg

        # A register never given points-to facts: conservative fallback.
        assert pts.pts("main", VReg(999, Type.PTR)) == pts.all_locations
