"""Differential identity: decoded backend vs tree-walker, whole corpus.

The acceptance bar for the pre-decoded backend is *bit-identical*
observable behavior: output, cycles, instructions and return value must
match the tree-walker on every program in ``examples/`` and the
benchmark suite, with and without profiler instrumentation, and through
the parallel executor.  These tests enforce exactly that.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.bench import benchmark_names, compile_benchmark
from repro.core.parallelizer import parallelize_module
from repro.core.selection import SelectionConfig, choose_loops
from repro.frontend import compile_source
from repro.runtime import run_module
from repro.runtime.machine import MachineConfig
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.profiler import profile_module

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Examples that expose their MiniC program as a module-level SOURCE.
EXAMPLE_FILES = ("quickstart.py", "inspect_transformation.py")

#: Benchmarks given the (expensive) full parallel-pipeline comparison.
EXECUTOR_BENCHES = ("equake", "mcf")

_modules = {}


def _bench_module(name):
    module = _modules.get(name)
    if module is None:
        module = _modules[name] = compile_benchmark(name, "train")
    return module


def _example_module(filename):
    module = _modules.get(filename)
    if module is None:
        path = EXAMPLES_DIR / filename
        spec = importlib.util.spec_from_file_location(path.stem, path)
        example = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(example)
        module = _modules[filename] = compile_source(example.SOURCE)
    return module


def _assert_sequential_identity(module):
    tree = run_module(module, backend="tree")
    decoded = run_module(module, backend="decoded")
    assert tree.to_dict() == decoded.to_dict()


def _assert_profile_identity(module):
    tree = profile_module(module, backend="tree")
    decoded = profile_module(module, backend="decoded")
    assert tree.to_dict() == decoded.to_dict()


@pytest.mark.parametrize("bench", benchmark_names())
def test_benchmark_sequential_identity(bench):
    _assert_sequential_identity(_bench_module(bench))


@pytest.mark.parametrize("bench", benchmark_names())
def test_benchmark_profile_identity(bench):
    _assert_profile_identity(_bench_module(bench))


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_sequential_identity(filename):
    _assert_sequential_identity(_example_module(filename))


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_profile_identity(filename):
    _assert_profile_identity(_example_module(filename))


@pytest.mark.parametrize("bench", EXECUTOR_BENCHES)
def test_parallel_executor_identity(bench):
    machine = MachineConfig(cores=6)
    module = _bench_module(bench)
    profile = profile_module(module, machine)
    selection = choose_loops(
        module, profile, SelectionConfig(machine=machine, cores=6)
    )
    transformed, infos = parallelize_module(
        module, selection.chosen, machine
    )
    tree = ParallelExecutor(
        transformed, infos, machine, backend="tree"
    ).execute()
    decoded = ParallelExecutor(transformed, infos, machine).execute()
    assert tree.result.to_dict() == decoded.result.to_dict()
    assert tree.cycles == decoded.cycles
    assert {k: s.to_dict() for k, s in tree.loop_stats.items()} == {
        k: s.to_dict() for k, s in decoded.loop_stats.items()
    }
    assert len(tree.traces) == len(decoded.traces)
