"""Differential identity: compiled backends vs tree-walker, whole corpus.

The acceptance bar for both compiled backends — the pre-decoded closure
tier and the superblock code-generated tier — is *bit-identical*
observable behavior: output, cycles, instructions and return value must
match the tree-walker on every program in ``examples/`` and the
benchmark suite, with and without profiler instrumentation, and through
the parallel executor.  These tests enforce exactly that.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.bench import benchmark_names, compile_benchmark
from repro.core.parallelizer import parallelize_module
from repro.core.selection import SelectionConfig, choose_loops
from repro.frontend import compile_source
from repro.runtime import Interpreter, run_module
from repro.runtime.machine import MachineConfig
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.profiler import profile_module

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Examples that expose their MiniC program as a module-level SOURCE.
EXAMPLE_FILES = ("quickstart.py", "inspect_transformation.py")

#: Benchmarks given the (expensive) full parallel-pipeline comparison.
EXECUTOR_BENCHES = ("equake", "mcf")

#: The compiled backends, each checked against the tree oracle.
COMPILED_BACKENDS = ("decoded", "superblock")

_modules = {}


def _bench_module(name):
    module = _modules.get(name)
    if module is None:
        module = _modules[name] = compile_benchmark(name, "train")
    return module


def _example_module(filename):
    module = _modules.get(filename)
    if module is None:
        path = EXAMPLES_DIR / filename
        spec = importlib.util.spec_from_file_location(path.stem, path)
        example = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(example)
        module = _modules[filename] = compile_source(example.SOURCE)
    return module


def _assert_sequential_identity(module, backend):
    tree = run_module(module, backend="tree")
    compiled = run_module(module, backend=backend)
    assert tree.to_dict() == compiled.to_dict()


def _assert_profile_identity(module, backend):
    tree = profile_module(module, backend="tree")
    compiled = profile_module(module, backend=backend)
    assert tree.to_dict() == compiled.to_dict()


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("bench", benchmark_names())
def test_benchmark_sequential_identity(bench, backend):
    _assert_sequential_identity(_bench_module(bench), backend)


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("bench", benchmark_names())
def test_benchmark_profile_identity(bench, backend):
    _assert_profile_identity(_bench_module(bench), backend)


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_sequential_identity(filename, backend):
    _assert_sequential_identity(_example_module(filename), backend)


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_profile_identity(filename, backend):
    _assert_profile_identity(_example_module(filename), backend)


class _HookRecorder(Interpreter):
    """The hooked matrix's instrumented interpreter.

    Counts loads and folds every ``on_block_entry`` call -- order and
    arguments -- into a running digest, so two variants agree on the
    digest iff they made byte-for-byte the same hook call sequence
    without the test holding millions of tuples.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.count_loads = True
        self.blocks_entered = 0
        self.entry_digest = 0

    def on_block_entry(self, frame, prev, block):
        self.blocks_entered += 1
        self.entry_digest = hash(
            (self.entry_digest, prev.name if prev is not None else None,
             block.name)
        )


def _hooked_run(module, backend):
    interp = _HookRecorder(module, backend=backend)
    result = interp.run()
    return (
        result.to_dict(),
        interp.load_count,
        interp.blocks_entered,
        interp.entry_digest,
    )


@pytest.mark.parametrize("bench", benchmark_names())
def test_benchmark_hooked_instrumentation_identity(bench):
    """Hooked superblock tier vs hooked decoded variant vs tree walker.

    All three must agree on the run result *and* on the instrumentation
    they produced: total loads counted and the exact ``on_block_entry``
    call sequence (prev/block arguments in order).
    """
    module = _bench_module(bench)
    tree = _hooked_run(module, "tree")
    assert _hooked_run(module, "decoded") == tree
    assert _hooked_run(module, "superblock") == tree


@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("bench", EXECUTOR_BENCHES)
def test_parallel_executor_identity(bench, backend):
    machine = MachineConfig(cores=6)
    module = _bench_module(bench)
    profile = profile_module(module, machine)
    selection = choose_loops(
        module, profile, SelectionConfig(machine=machine, cores=6)
    )
    transformed, infos = parallelize_module(
        module, selection.chosen, machine
    )
    tree = ParallelExecutor(
        transformed, infos, machine, backend="tree"
    ).execute()
    compiled = ParallelExecutor(
        transformed, infos, machine, backend=backend
    ).execute()
    assert tree.result.to_dict() == compiled.result.to_dict()
    assert tree.cycles == compiled.cycles
    assert {k: s.to_dict() for k, s in tree.loop_stats.items()} == {
        k: s.to_dict() for k, s in compiled.loop_stats.items()
    }
    assert len(tree.traces) == len(compiled.traces)


def _trace_bytes(trace):
    """Every serialized field of one compact trace, columns as bytes."""
    return (
        trace.loop_id,
        trace.start_cycles,
        trace.end_cycles,
        trace.loads,
        trace.it_start.tobytes(),
        trace.it_end.tobytes(),
        trace.ev_off.tobytes(),
        trace.ev_kind.tobytes(),
        trace.ev_dep.tobytes(),
        trace.ev_at.tobytes(),
        trace.words,
    )


_parallelized = {}


def _parallel_setup(bench, machine):
    entry = _parallelized.get(bench)
    if entry is None:
        module = _bench_module(bench)
        profile = profile_module(module, machine)
        selection = choose_loops(
            module, profile, SelectionConfig(machine=machine, cores=6)
        )
        entry = _parallelized[bench] = parallelize_module(
            module, selection.chosen, machine
        )
    return entry


@pytest.mark.parametrize("bench", benchmark_names())
def test_parallel_executor_recorded_traces_identity(bench):
    """Both compiled tiers record byte-identical invocation traces.

    The executor's record path runs on the hooked engines (it observes
    block entries and sync/transfer instructions), so this pins the
    hooked superblock tier to the decoded hooked variant across the
    whole corpus: results, cycles and every column of every recorded
    trace must match exactly.
    """
    machine = MachineConfig(cores=6)
    transformed, infos = _parallel_setup(bench, machine)
    outcomes = {}
    for backend in COMPILED_BACKENDS:
        outcomes[backend] = ParallelExecutor(
            transformed, infos, machine, backend=backend
        ).execute()
    decoded, superblock = outcomes["decoded"], outcomes["superblock"]
    assert decoded.result.to_dict() == superblock.result.to_dict()
    assert decoded.cycles == superblock.cycles
    assert len(decoded.traces) == len(superblock.traces)
    for left, right in zip(decoded.traces, superblock.traces):
        assert _trace_bytes(left) == _trace_bytes(right)
