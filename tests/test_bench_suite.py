"""Tests over the 13-benchmark suite.

Correctness is checked at the ``train`` input scale to keep the suite
fast; the benchmark harness (``benchmarks/``) runs the full ``ref`` scale.
"""

import pytest

from repro import MachineConfig, parallelize_and_run
from repro.bench import (
    BENCHMARKS,
    benchmark_names,
    compile_benchmark,
    get_benchmark,
)
from repro.runtime import run_module

ALL_NAMES = benchmark_names()

_pipeline_cache = {}


def helix_train_run(name):
    """One cached full-pipeline run per benchmark at train scale."""
    if name not in _pipeline_cache:
        module = compile_benchmark(name, "train")
        _pipeline_cache[name] = parallelize_and_run(
            module, MachineConfig(cores=6), record_traces=False
        )
    return _pipeline_cache[name]


class TestRegistry:
    def test_thirteen_benchmarks(self):
        assert len(ALL_NAMES) == 13
        assert set(ALL_NAMES) == set(BENCHMARKS)

    def test_specs_complete(self):
        for name in ALL_NAMES:
            spec = get_benchmark(name)
            assert spec.description
            assert spec.modeled
            assert spec.paper_speedup_6 > 1.0

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nonesuch")

    def test_paper_max_is_art(self):
        best = max(ALL_NAMES, key=lambda n: BENCHMARKS[n].paper_speedup_6)
        assert best == "art"


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPerBenchmark:
    def test_compiles_at_both_scales(self, name):
        train = compile_benchmark(name, "train")
        ref = compile_benchmark(name, "ref")
        assert train.instruction_count() > 50
        assert ref.instruction_count() == train.instruction_count()

    def test_deterministic_output(self, name):
        module = compile_benchmark(name, "train")
        first = run_module(module)
        assert first.output == helix_train_run(name).sequential.output
        assert first.output  # prints checksums

    def test_ref_is_larger_than_train(self, name):
        spec = get_benchmark(name)
        # ref sources differ only in workload constants.
        assert spec.source("ref") != spec.source("train")

    def test_parallel_execution_matches_sequential(self, name):
        result = helix_train_run(name)
        assert result.output_matches, (
            f"{name}: {result.sequential.output} != {result.parallel.output}"
        )

    def test_no_slowdown_at_six_cores(self, name):
        result = helix_train_run(name)
        assert result.speedup >= 0.95


class TestSuiteShape:
    def test_speedup_ordering_roughly_matches_paper(self):
        """art must beat the low-parallelism benchmarks even on train."""
        speedups = {
            name: helix_train_run(name).speedup
            for name in ("art", "mcf", "crafty")
        }
        assert speedups["art"] > speedups["mcf"]
        assert speedups["art"] > speedups["crafty"]
