"""Tests for the persistent evaluation cache and the parallel runner.

A tiny synthetic benchmark is registered in the suite registry so the
full pipeline (compile, profile, select, transform, execute) runs in
milliseconds rather than the seconds a real suite benchmark takes.
"""

import json
import multiprocessing

import pytest

from repro.bench import benchmark_fingerprint
from repro.bench import suite as bench_suite
from repro.core.loopinfo import HelixOptions
from repro.evaluation.cache import (
    EvaluationCache,
    code_version,
    fingerprint,
    machine_fingerprint,
    options_fingerprint,
    pipeline_fingerprint,
)
from repro.evaluation.parallel_runner import run_suite
from repro.evaluation.reporting import format_stage_stats
from repro.evaluation.runner import EvaluationRunner, StageStats
from repro.frontend import compile_source
from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.runtime.interpreter import ExecutionResult
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import (
    CompactInvocationTrace,
    IterationTrace,
    LoopRunStats,
    ParallelExecutor,
    schedule_invocation,
)
from repro.runtime.profiler import ProfileData, profile_module

TINY = """
int total;
void main() {
    int i;
    for (i = 0; i < 24; i++) {
        int k = 0;
        int f = 0;
        while (k < 12) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""

TINY2 = """
int acc;
void main() {
    int i;
    for (i = 0; i < 30; i++) { acc = (acc + i * i) % 7919; }
    print(acc);
}
"""


def _register(name: str, source: str) -> str:
    bench_suite.BENCHMARKS[name] = bench_suite.BenchmarkSpec(
        name, "synthetic test benchmark", lambda scale: source, 1.0, "test"
    )
    return name


@pytest.fixture()
def tiny_bench():
    name = _register("tinytest", TINY)
    yield name
    del bench_suite.BENCHMARKS[name]


@pytest.fixture()
def tiny_pair():
    names = [_register("tinytest", TINY), _register("tinytest2", TINY2)]
    yield names
    for name in names:
        del bench_suite.BENCHMARKS[name]


def _executed_tiny(cores=4):
    module = compile_source(TINY)
    loop_ids = [
        l.id
        for l in find_loops(module.functions["main"])
        if l.parent is None
    ]
    machine = MachineConfig(cores=cores)
    transformed, infos = parallelize_module(module, loop_ids, machine)
    executor = ParallelExecutor(transformed, infos, machine)
    return executor, executor.execute(), transformed, infos, machine


# ------------------------------------------------------------- serialization


class TestTraceSerialization:
    def test_iteration_trace_roundtrip(self):
        trace = IterationTrace(
            start_cycles=10,
            end_cycles=90,
            events=[("w", 0, 12), ("s", 0, 40), ("n", -1, 44)],
            words={3: 2},
        )
        restored = IterationTrace.from_dict(
            json.loads(json.dumps(trace.to_dict()))
        )
        assert restored == trace

    def test_recorded_traces_roundtrip_to_identical_schedules(self):
        executor, result, _, infos, machine = _executed_tiny()
        info_by_id = {info.loop_id: info for info in infos}
        assert result.traces, "tiny benchmark must record traces"
        for trace in result.traces:
            restored = CompactInvocationTrace.from_dict(
                json.loads(json.dumps(trace.to_dict()))
            )
            assert restored == trace
            # Legacy payload: the same trace in the old per-iteration
            # dict format must still load to an equal compact trace.
            legacy = CompactInvocationTrace.from_dict(
                json.loads(
                    json.dumps(trace.to_invocation_trace().to_dict())
                )
            )
            assert legacy == trace
            for probe in (machine, machine.with_cores(2)):
                assert schedule_invocation(
                    restored, info_by_id[trace.loop_id], probe
                ) == schedule_invocation(
                    trace, info_by_id[trace.loop_id], probe
                )

    def test_restored_executor_replays_identically(self):
        executor, result, transformed, infos, machine = _executed_tiny()
        clone = ParallelExecutor(transformed, infos, machine)
        restored = clone.restore_run(
            ExecutionResult.from_dict(
                json.loads(json.dumps(result.result.to_dict()))
            ),
            [
                CompactInvocationTrace.from_dict(t.to_dict())
                for t in result.traces
            ],
            {
                stats.loop_id: stats
                for stats in (
                    LoopRunStats.from_dict(s.to_dict())
                    for s in result.loop_stats.values()
                )
            },
            load_count=executor.load_count,
        )
        assert restored.cycles == result.cycles
        assert restored.loop_stats == result.loop_stats
        assert clone.load_count == executor.load_count
        for probe in (machine.with_cores(2),
                      machine.with_prefetch(PrefetchMode.NONE)):
            direct = executor.replay(probe)
            replayed = clone.replay(probe)
            assert replayed.cycles == direct.cycles
            assert replayed.loop_stats == direct.loop_stats

    def test_restore_run_defaults_load_count_to_trace_loads(self):
        executor, result, transformed, infos, machine = _executed_tiny()
        clone = ParallelExecutor(transformed, infos, machine)
        clone.restore_run(
            result.result,
            list(result.traces),
            dict(result.loop_stats),
        )
        assert clone.load_count == sum(t.loads for t in result.traces)

    def test_loop_run_stats_roundtrip(self):
        stats = LoopRunStats(
            loop_id=("main", "for.header"),
            invocations=2,
            iterations=10,
            sequential_cycles=1000,
            parallel_cycles=400,
            signals=5,
            waits=5,
            wait_stall_cycles=44,
            transfer_words=3,
            loads=20,
            segment_cycles=120,
        )
        assert LoopRunStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        ) == stats

    def test_execution_result_roundtrip(self):
        result = ExecutionResult(
            output=["1", "2.5"], cycles=77, instructions=31, return_value=None
        )
        assert ExecutionResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        ) == result

    def test_profile_roundtrip(self):
        module = compile_source(TINY)
        machine = MachineConfig(cores=4)
        profile = profile_module(module, machine)
        restored = ProfileData.from_dict(
            json.loads(json.dumps(profile.to_dict())), module
        )
        assert restored.loops == profile.loops
        assert restored.block_counts == profile.block_counts
        assert restored.func_inclusive_cycles == profile.func_inclusive_cycles
        assert restored.func_activations == profile.func_activations
        assert restored.result == profile.result
        assert restored.dynamic_nesting.nodes() == profile.dynamic_nesting.nodes()
        assert sorted(restored.dynamic_nesting.graph.edges) == sorted(
            profile.dynamic_nesting.graph.edges
        )
        assert restored.module is module


# ------------------------------------------------------------------ hashing


class TestFingerprints:
    def test_fingerprint_is_stable_and_sensitive(self):
        base = {"a": 1, "b": [1, 2]}
        assert fingerprint(base) == fingerprint({"b": [1, 2], "a": 1})
        assert fingerprint(base) != fingerprint({"a": 1, "b": [2, 1]})

    def test_options_fingerprint_covers_every_field(self):
        base = options_fingerprint(HelixOptions())
        import dataclasses

        for fld in dataclasses.fields(HelixOptions):
            if fld.type == "bool" or isinstance(fld.default, bool):
                changed = HelixOptions(**{fld.name: not fld.default})
            else:
                changed = HelixOptions(**{fld.name: fld.default + 1})
            assert options_fingerprint(changed) != base, fld.name

    def test_machine_fingerprint_sees_cost_model(self):
        base = MachineConfig(cores=4)
        assert machine_fingerprint(base) == machine_fingerprint(
            MachineConfig(cores=4)
        )
        assert machine_fingerprint(base) != machine_fingerprint(
            MachineConfig(cores=4, signal_latency=220)
        )

    def test_pipeline_fingerprint_distinguishes_configs(self):
        fp = pipeline_fingerprint(HelixOptions(), PrefetchMode.HELIX, None,
                                  False, None)
        assert fp != pipeline_fingerprint(
            HelixOptions(), PrefetchMode.NONE, None, False, None
        )
        assert fp != pipeline_fingerprint(
            HelixOptions(enable_segment_scheduling=False),
            PrefetchMode.HELIX, None, False, None,
        )
        assert fp != pipeline_fingerprint(
            HelixOptions(), PrefetchMode.HELIX, 110.0, False, None
        )
        assert fp != pipeline_fingerprint(
            HelixOptions(), PrefetchMode.HELIX, None, False,
            [("main", "for.header")],
        )

    def test_code_version_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_benchmark_fingerprint_differs_by_scale_content(self, tiny_pair):
        a, b = tiny_pair
        assert benchmark_fingerprint(a) != benchmark_fingerprint(b)


# ---------------------------------------------------------------- disk store


class TestEvaluationCache:
    def test_store_load(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        assert cache.load("module", "k1") is None
        cache.store("module", "k1", {"ir": "func"})
        assert cache.load("module", "k1") == {"ir": "func"}
        assert cache.traffic()["module"] == {
            "hits": 1, "misses": 1, "stores": 1
        }

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        cache.store("profile", "k", {"x": 1})
        path = cache._path("profile", "k")
        path.write_text("{not json")
        assert cache.load("profile", "k") is None


# -------------------------------------------------------- runner integration


class TestRunnerCacheIntegration:
    def test_warm_cache_skips_interpretation(self, tiny_bench, tmp_path):
        machine = MachineConfig(cores=4)
        cold = EvaluationRunner(machine, cache=EvaluationCache(tmp_path))
        run_cold = cold.helix_run(tiny_bench)
        for stage in ("compile", "profile", "sequential", "execute"):
            assert cold.stats.stages[stage].computes >= 1, stage

        warm = EvaluationRunner(machine, cache=EvaluationCache(tmp_path))
        run_warm = warm.helix_run(tiny_bench)
        for stage in ("compile", "profile", "sequential", "execute"):
            tally = warm.stats.stages[stage]
            assert tally.computes == 0, stage
            assert tally.disk_hits >= 1, stage

        assert run_warm.speedup == run_cold.speedup
        assert run_warm.parallel.cycles == run_cold.parallel.cycles
        assert run_warm.sequential.cycles == run_cold.sequential.cycles
        assert run_warm.output_matches
        # The restored executor replays other machines identically.
        probe = machine.with_cores(2)
        assert run_warm.speedup_at(probe) == run_cold.speedup_at(probe)

    def test_machine_change_invalidates_entries(self, tiny_bench, tmp_path):
        EvaluationRunner(
            MachineConfig(cores=4), cache=EvaluationCache(tmp_path)
        ).helix_run(tiny_bench)
        other = EvaluationRunner(
            MachineConfig(cores=4, signal_latency=220),
            cache=EvaluationCache(tmp_path),
        )
        other.helix_run(tiny_bench)
        for stage in ("profile", "sequential", "execute"):
            assert other.stats.stages[stage].computes == 1, stage
        # Modules don't depend on the machine: still served from disk.
        assert other.stats.stages["compile"].disk_hits >= 1

    def test_runner_without_cache_unchanged(self, tiny_bench):
        runner = EvaluationRunner(MachineConfig(cores=4))
        first = runner.helix_run(tiny_bench)
        second = runner.helix_run(tiny_bench)
        assert first is second
        assert runner.stats.stages["execute"].memory_hits == 1

    def test_cache_key_does_not_shadow_options(self, tiny_bench):
        # Regression: a string cache_key used to *replace* the config in
        # the memo key, so differing configurations sharing a label
        # returned the first result computed.
        runner = EvaluationRunner(MachineConfig(cores=4))
        helix = runner.pipeline(
            tiny_bench, prefetch=PrefetchMode.HELIX, cache_key="label"
        )
        nopf = runner.pipeline(
            tiny_bench, prefetch=PrefetchMode.NONE, cache_key="label"
        )
        assert nopf is not helix
        assert nopf.parallel.machine.prefetch_mode is PrefetchMode.NONE
        noopt = runner.pipeline(
            tiny_bench,
            options=HelixOptions(enable_signal_optimization=False),
            cache_key="label",
        )
        assert noopt is not helix
        # Identical config + label still memoizes.
        again = runner.pipeline(
            tiny_bench, prefetch=PrefetchMode.HELIX, cache_key="label"
        )
        assert again is helix


# ------------------------------------------------------------ stage counters


class TestStageStats:
    def test_merge_and_render(self):
        stats = StageStats()
        stats.record("execute", "compute", 2.0)
        stats.record("execute", "disk", 0.5)
        stats.record("compile", "memory")
        other = StageStats()
        other.record("execute", "compute", 1.0)
        stats.merge(other.as_dict())
        data = stats.as_dict()
        assert data["execute"]["computes"] == 2
        assert data["execute"]["disk_hits"] == 1
        assert data["execute"]["wall_seconds"] == pytest.approx(3.5)
        # Stages render in pipeline order.
        text = format_stage_stats(data)
        lines = text.splitlines()
        assert lines[0] == "Pipeline stage statistics"
        assert "compile" in lines[3]
        assert "execute" in lines[4]

    def test_merge_folds_invalidations(self):
        stats = StageStats()
        stats.invalidate("analysis:loops")
        other = StageStats()
        other.invalidate("analysis:loops")
        other.invalidate("analysis:loops")
        other.record("analysis:loops", "compute", 0.25)
        stats.merge(other.as_dict())
        tally = stats.tally("analysis:loops")
        assert tally.invalidations == 3
        assert tally.computes == 1
        assert tally.wall_seconds == pytest.approx(0.25)

    def test_merge_tolerates_legacy_partial_snapshots(self):
        # Snapshots from older code versions may lack fields added
        # since; every one defaults to zero instead of raising.
        stats = StageStats()
        stats.record("execute", "compute", 1.0)
        stats.merge({"execute": {"computes": 2}, "profile": {}})
        assert stats.tally("execute").computes == 3
        assert stats.tally("execute").wall_seconds == pytest.approx(1.0)
        assert stats.tally("profile").requests == 0
        assert stats.tally("profile").invalidations == 0


# ------------------------------------------------------------ parallel suite


class TestParallelSuite:
    def test_sequential_suite_report(self, tiny_pair, tmp_path):
        fig9, report, runner = run_suite(
            machine=MachineConfig(cores=4),
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            benches=tiny_pair,
        )
        assert set(report.speedups) == set(tiny_pair)
        assert report.wall_seconds > 0
        assert report.stages["execute"]["computes"] == len(tiny_pair)
        payload = json.loads(report.to_json())
        assert payload["geomeans"]["4"] == pytest.approx(fig9.geomean(4))
        assert payload["code_version"] == code_version()
        # Provenance block: where and on what the suite ran.
        env = payload["environment"]
        assert env["code_version"] == code_version()
        assert env["python"] and env["platform"]
        assert env["cpu_count"] >= 1
        # Simulated-time accounting: one per-core block per benchmark,
        # internally consistent.
        assert set(payload["timeline"]) == set(tiny_pair)
        for block in payload["timeline"].values():
            assert block["cores"] == 4
            assert len(block["per_core"]) == 4
            for category, total in block["totals"].items():
                assert total == sum(
                    row[category] for row in block["per_core"]
                )
            # The run's cycles land somewhere: parallel compute or the
            # main thread's sequential track.
            assert (
                block["totals"]["compute"] + block["totals"]["sequential"]
                > 0
            )
        # Interpreter counter block: sequential references run on the
        # superblock tier, so formation/codegen totals accumulate.
        interp = payload["interp"]
        assert interp["interp.backend.superblock"] >= len(tiny_pair)
        assert interp["interp.superblock.formed"] > 0
        assert interp["interp.codegen.functions"] > 0

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="workers inherit the test benchmark registry via fork",
    )
    def test_parallel_suite_identical_to_sequential(self, tiny_pair):
        machine = MachineConfig(cores=4)
        fig_seq, _, _ = run_suite(machine=machine, jobs=1, benches=tiny_pair)
        fig_par, report, _ = run_suite(
            machine=machine, jobs=2, benches=tiny_pair
        )
        assert fig_par.render() == fig_seq.render()
        assert [b.bench for b in report.benches] == list(tiny_pair)
        assert all(b.output_matches for b in report.benches)
        # The parent merged the workers' artifacts: its own pipelines
        # were all served from the scratch disk cache.
        assert report.stages["execute"]["disk_hits"] >= len(tiny_pair)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="workers inherit the test benchmark registry via fork",
    )
    def test_parallel_trace_merges_to_sequential_span_set(self, tiny_pair):
        from repro.obs import tracing

        machine = MachineConfig(cores=4)
        with tracing() as seq_tracer:
            run_suite(machine=machine, jobs=1, benches=tiny_pair)
        with tracing() as par_tracer:
            run_suite(machine=machine, jobs=2, benches=tiny_pair)
        seq_names = {e.name for e in seq_tracer.finished()}
        par_names = {e.name for e in par_tracer.finished()}
        # Workers ship their spans home, so the merged parallel trace
        # covers exactly the spans a sequential run records.
        assert par_names == seq_names
        # ... under their own process ids (>= 2 distinct: the parent
        # plus at least one worker).
        assert len({e.pid for e in par_tracer.finished()}) >= 2

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="workers inherit the test benchmark registry via fork",
    )
    def test_parallel_suite_reuses_persistent_cache(
        self, tiny_pair, tmp_path
    ):
        machine = MachineConfig(cores=4)
        cache_dir = str(tmp_path / "cache")
        run_suite(
            machine=machine, jobs=2, cache_dir=cache_dir, benches=tiny_pair
        )
        _, warm_report, _ = run_suite(
            machine=machine, jobs=2, cache_dir=cache_dir, benches=tiny_pair
        )
        for stage in ("compile", "profile", "sequential", "execute"):
            assert warm_report.stages[stage]["computes"] == 0, stage
