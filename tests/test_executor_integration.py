"""Integration tests of the executor across tricky whole-program shapes."""

import pytest

from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.frontend import compile_source
from repro.runtime import run_module
from repro.runtime.machine import MachineConfig
from repro.runtime.parallel import ParallelExecutor


def run_both(source, loop_filter=None, cores=4):
    module = compile_source(source)
    baseline = run_module(module)
    loop_ids = []
    for func in module.functions.values():
        for loop in find_loops(func):
            if loop.parent is not None:
                continue
            if loop_filter and not loop_filter(loop):
                continue
            loop_ids.append(loop.id)
    machine = MachineConfig(cores=cores)
    transformed, infos = parallelize_module(module, loop_ids, machine)
    executor = ParallelExecutor(transformed, infos, machine)
    result = executor.execute()
    assert result.output == baseline.output
    return baseline, result, executor


class TestMultipleInvocations:
    def test_loop_invoked_many_times(self):
        source = """
        int acc;
        void kernel(int seed) {
            int i;
            for (i = 0; i < 16; i++) {
                acc = (acc + i * seed) % 9973;
            }
        }
        void main() {
            int r;
            for (r = 0; r < 25; r++) { kernel(r + 1); }
            print(acc);
        }
        """
        baseline, result, executor = run_both(
            source, loop_filter=lambda l: l.func.name == "kernel"
        )
        stats = next(iter(result.loop_stats.values()))
        assert stats.invocations == 25
        assert len(executor.traces) == 25

    def test_two_parallel_loops_alternate(self):
        source = """
        int a; int b;
        void main() {
            int r;
            for (r = 0; r < 5; r++) {
                int i;
                for (i = 0; i < 12; i++) { a = (a + i * 3) % 1009; }
                int j;
                for (j = 0; j < 12; j++) { b = (b ^ (j + a)) % 2048; }
            }
            print(a); print(b);
        }
        """
        module = compile_source(source)
        baseline = run_module(module)
        main_forest = find_loops(module.functions["main"])
        inner = [l.id for l in main_forest if l.parent is not None]
        machine = MachineConfig(cores=4)
        transformed, infos = parallelize_module(module, inner, machine)
        result = ParallelExecutor(transformed, infos, machine).execute()
        assert result.output == baseline.output
        assert len(result.loop_stats) == 2


class TestNestedGuard:
    def test_dynamic_nesting_serializes_inner(self):
        """A parallel loop calling a function with its own parallel loop:
        the runtime flag sends the inner one down its sequential path."""
        source = """
        int acc;
        void inner() {
            int i;
            for (i = 0; i < 8; i++) { acc = (acc + i) % 7919; }
        }
        void main() {
            int r;
            for (r = 0; r < 6; r++) {
                inner();
                acc = (acc * 3 + r) % 7919;
            }
            print(acc);
        }
        """
        module = compile_source(source)
        baseline = run_module(module)
        outer = next(iter(find_loops(module.functions["main"]))).id
        inner = next(iter(find_loops(module.functions["inner"]))).id
        machine = MachineConfig(cores=4)
        transformed, infos = parallelize_module(module, [outer, inner], machine)
        executor = ParallelExecutor(transformed, infos, machine)
        result = executor.execute()
        assert result.output == baseline.output
        # Only the outer loop records invocations: the inner always runs
        # its sequential version while the outer is active.
        by_loop = result.loop_stats
        assert by_loop[outer].invocations == 1
        assert inner not in by_loop


class TestBreakExits:
    def test_early_exit_invocation(self):
        source = """
        int total;
        void main() {
            int i;
            for (i = 0; i < 1000; i++) {
                total = total + i;
                if (total > 100) { break; }
            }
            print(total); print(i);
        }
        """
        baseline, result, executor = run_both(source)
        stats = next(iter(result.loop_stats.values()))
        assert stats.iterations < 1000

    def test_while_with_complex_exit(self):
        source = """
        int state;
        void main() {
            int x = 1;
            int guard = 0;
            while (x < 500 && guard < 60) {
                x = (x * 3) % 257 + 1;
                state = state + x;
                guard++;
            }
            print(state); print(guard);
        }
        """
        run_both(source, loop_filter=lambda l: l.header.startswith("while"))


class TestFloatPrograms:
    def test_float_reduction(self):
        source = """
        float series;
        void main() {
            int i;
            for (i = 1; i < 60; i++) {
                float term = 1.0 / (i * i);
                series = series + term;
            }
            print(series);
        }
        """
        run_both(source)


class TestDegenerateInvocations:
    def test_zero_iteration_loop(self):
        """A parallel loop whose condition is false on entry."""
        source = """
        int total;
        void main() {
            int n = 0;
            int i;
            for (i = 0; i < n; i++) { total = total + i; }
            print(total);
        }
        """
        baseline, result, executor = run_both(source)
        stats = next(iter(result.loop_stats.values()))
        assert stats.iterations == 1  # single header entry, then exit

    def test_single_iteration_loop(self):
        source = """
        int total;
        void main() {
            int i;
            for (i = 0; i < 1; i++) { total = total + 42; }
            print(total);
        }
        """
        run_both(source)

    def test_loop_with_only_prologue_work(self):
        source = """
        int total;
        void main() {
            int i = 0;
            while (i < 10) { i = i + 1; }
            total = i;
            print(total);
        }
        """
        run_both(source, loop_filter=lambda l: l.header.startswith("while"))
