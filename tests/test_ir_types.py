"""Tests for the IR type system."""

import pytest

from repro.ir.types import CPU_WORD_BYTES, Type, common_numeric_type


class TestType:
    def test_numeric_types(self):
        assert Type.INT.is_numeric
        assert Type.FLOAT.is_numeric

    def test_non_numeric_types(self):
        assert not Type.PTR.is_numeric
        assert not Type.VOID.is_numeric

    def test_void_has_no_size(self):
        assert Type.VOID.size_bytes == 0

    def test_scalar_sizes_are_word_sized(self):
        assert Type.INT.size_bytes == CPU_WORD_BYTES
        assert Type.FLOAT.size_bytes == CPU_WORD_BYTES
        assert Type.PTR.size_bytes == CPU_WORD_BYTES

    def test_word_size_matches_testbed(self):
        # The i7-980X is a 64-bit machine; Equation 1 divides by this.
        assert CPU_WORD_BYTES == 8


class TestCommonNumericType:
    def test_int_int(self):
        assert common_numeric_type(Type.INT, Type.INT) is Type.INT

    def test_float_dominates(self):
        assert common_numeric_type(Type.INT, Type.FLOAT) is Type.FLOAT
        assert common_numeric_type(Type.FLOAT, Type.INT) is Type.FLOAT
        assert common_numeric_type(Type.FLOAT, Type.FLOAT) is Type.FLOAT

    @pytest.mark.parametrize("bad", [Type.PTR, Type.VOID])
    def test_non_numeric_rejected(self, bad):
        with pytest.raises(TypeError):
            common_numeric_type(bad, Type.INT)
        with pytest.raises(TypeError):
            common_numeric_type(Type.INT, bad)
