"""Tests for Step 4: regions and wait/signal insertion."""

from repro.analysis.cfg import CFGView
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.loops import find_loops
from repro.core.segments import (
    compute_region,
    insert_synchronization,
    segment_span_blocks,
)
from repro.frontend import compile_source
from repro.ir import Opcode


def prepare(source):
    module = compile_source(source)
    func = module.functions["main"]
    loop = next(iter(find_loops(func)))
    deps = DependenceAnalysis(module).loop_dependences(func, loop)
    return module, func, loop, deps


ACCUMULATOR = """
int total;
void main() {
    int i;
    for (i = 0; i < 8; i++) {
        int work = i * i + 3;
        total = total + work;
    }
}
"""


class TestRegions:
    def test_region_contains_endpoint_blocks(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        assert deps
        cfg = CFGView(func)
        region = compute_region(cfg, loop, deps[0], func)
        endpoint_blocks = {
            func.find_block_of(e).name for e in deps[0].endpoints()
        }
        assert endpoint_blocks <= set(region)

    def test_region_is_backward_closed(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        cfg = CFGView(func)
        region = compute_region(cfg, loop, deps[0], func)
        back_edges = {(l, loop.header) for l in loop.latches}
        # Every in-loop predecessor of a region block is in the region
        # (except across the back edge): you can still reach the endpoint.
        for name in region:
            for pred in cfg.preds[name]:
                if pred in loop.blocks and (pred, name) not in back_edges:
                    assert pred in region

    def test_span_blocks_within_region(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        cfg = CFGView(func)
        region = compute_region(cfg, loop, deps[0], func)
        span = segment_span_blocks(cfg, loop, deps[0], region, func)
        assert span <= region


class TestInsertion:
    def test_wait_before_each_endpoint(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        syncs = insert_synchronization(func, loop, deps)
        for sync in syncs:
            if not sync.synchronized:
                continue
            endpoint_uids = {e.uid for e in sync.dep.endpoints()}
            for name in loop.blocks:
                seen_wait = False
                for instr in func.blocks[name].instructions:
                    if (
                        instr.opcode is Opcode.WAIT
                        and instr.dep_id == sync.dep.index
                    ):
                        seen_wait = True
                    if instr.uid in endpoint_uids:
                        assert seen_wait, (
                            f"endpoint in {name} not preceded by wait"
                        )

    def test_signal_on_every_completing_path(self):
        """Interpret the loop and check every iteration signals each dep."""
        module, func, loop, deps = prepare(
            """
            int total;
            void main() {
                int i;
                for (i = 0; i < 8; i++) {
                    if (i % 2 == 0) {
                        total = total + i;
                    }
                }
            }
            """
        )
        syncs = insert_synchronization(func, loop, deps)
        from repro.runtime.interpreter import Interpreter

        events = []

        class Tracker(Interpreter):
            def exec_sync(self, frame, instr):
                events.append((instr.opcode, instr.dep_id))

        Tracker(module).run()
        signal_count = sum(
            1 for op, _ in events if op is Opcode.SIGNAL
        )
        # 8 completing iterations, at least one signal per dep each.
        active = [s for s in syncs if s.synchronized]
        assert signal_count >= 8 * len(active)

    def test_wait_precedes_signal_in_program_order(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        syncs = insert_synchronization(func, loop, deps)
        from repro.runtime.interpreter import Interpreter

        events = []

        class Tracker(Interpreter):
            def exec_sync(self, frame, instr):
                events.append((instr.opcode, instr.dep_id))

        Tracker(module).run()
        seen_wait = set()
        for op, dep in events:
            if op is Opcode.WAIT:
                seen_wait.add(dep)
            elif op is Opcode.SIGNAL:
                assert dep in seen_wait
                seen_wait.discard(dep)

    def test_functionally_inert(self):
        module, func, loop, deps = prepare(ACCUMULATOR)
        from repro.runtime import run_module

        module2 = compile_source(ACCUMULATOR)
        baseline = run_module(module2)
        insert_synchronization(func, loop, deps)
        result = run_module(module)
        assert result.output == baseline.output

    def test_doall_loop_needs_no_synchronization(self):
        module, func, loop, deps = prepare(
            """
            int a[16];
            void main() {
                int i;
                for (i = 0; i < 16; i++) { a[i] = i; }
            }
            """
        )
        syncs = insert_synchronization(func, loop, deps)
        assert all(not s.wait_instrs for s in syncs)
        assert not any(
            i.opcode in (Opcode.WAIT, Opcode.SIGNAL)
            for i in func.instructions()
        )


class TestInBlockSignals:
    def test_signal_placed_right_after_last_endpoint(self):
        """When the endpoint block's successors leave the region, the
        signal must sit inside the block, not at a successor's entry --
        otherwise trailing parallel code lands in the segment."""
        module, func, loop, deps = prepare(
            """
            int total;
            void main() {
                int i;
                for (i = 0; i < 8; i++) {
                    total = total + i;
                    int w = i * 5;
                    int w2 = w ^ 3;
                    print(w2);
                }
            }
            """
        )
        syncs = insert_synchronization(func, loop, deps)
        # Find a block containing both an endpoint store and a signal.
        found_inline_signal = False
        for name in loop.blocks:
            instrs = func.blocks[name].instructions
            store_pos = [
                k for k, ins in enumerate(instrs)
                if ins.opcode is Opcode.STOREG
            ]
            signal_pos = [
                k for k, ins in enumerate(instrs)
                if ins.opcode is Opcode.SIGNAL
            ]
            if store_pos and signal_pos:
                assert min(signal_pos) > max(store_pos)
                found_inline_signal = True
        assert found_inline_signal
