"""Tests for the observability layer: tracer, metrics, Chrome export.

Covers the recording/null tracer contract, the process-wide registry's
merge semantics, a golden-file schema check of the Chrome trace-event
exporter (deterministic via injected clock/pid/tid), the null tracer's
cost guarantee, and -- structurally -- that the scheduler hot paths
carry no tracing calls at all.
"""

import inspect
import json
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    REGISTRY,
    Registry,
    SpanEvent,
    Tracer,
    chrome_trace,
    get_tracer,
    set_tracer,
    traced,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)


class FakeClock:
    """Deterministic seconds counter standing in for perf_counter."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _tracer(pid=7, tid=3):
    clock = FakeClock()
    return Tracer(clock=clock, pid=pid, tid=tid), clock


# ------------------------------------------------------------------- tracer


class TestTracer:
    def test_span_records_timing_and_args(self):
        tracer, clock = _tracer()
        with tracer.span("work", cat="c", n=1) as sp:
            clock.advance(0.5)
            sp.set(outcome="ok")
        [event] = tracer.finished()
        assert event == SpanEvent(
            name="work",
            cat="c",
            start_us=0.0,
            dur_us=500_000.0,
            pid=7,
            tid=3,
            args={"n": 1, "outcome": "ok"},
        )

    def test_nested_spans_are_contained(self):
        tracer, clock = _tracer()
        with tracer.span("outer"):
            clock.advance(0.1)
            with tracer.span("inner"):
                clock.advance(0.2)
            clock.advance(0.1)
        inner, outer = tracer.finished()
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.start_us <= inner.start_us
        assert (
            inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us
        )

    def test_instant_has_zero_duration(self):
        tracer, clock = _tracer()
        clock.advance(2.0)
        tracer.instant("mark", cat="m", k=9)
        [event] = tracer.finished()
        assert event.dur_us == 0.0
        assert event.start_us == 2_000_000.0
        assert event.args == {"k": 9}

    def test_event_roundtrips_through_wire_format(self):
        tracer, clock = _tracer()
        with tracer.span("s", cat="c", a=1):
            clock.advance(0.25)
        [event] = tracer.finished()
        restored = SpanEvent.from_dict(
            json.loads(json.dumps(event.as_dict()))
        )
        assert restored == event

    def test_absorb_keeps_foreign_pid_and_tid(self):
        worker, clock = _tracer(pid=111, tid=222)
        with worker.span("remote"):
            clock.advance(0.1)
        parent, _ = _tracer(pid=1, tid=1)
        count = parent.absorb([e.as_dict() for e in worker.finished()])
        assert count == 1
        [event] = parent.finished()
        assert (event.pid, event.tid) == (111, 222)

    def test_tracing_installs_and_restores(self):
        assert get_tracer() is NULL_TRACER
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        installed = set_tracer(Tracer())
        try:
            assert get_tracer() is installed
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_traced_decorator_records_per_call(self):
        @traced(cat="test")
        def double(x):
            return 2 * x

        # Off: just runs.
        assert double(21) == 42
        assert NULL_TRACER.finished() == []
        # On: one span per call, labelled by qualname.
        with tracing() as tracer:
            assert double(5) == 10
        [event] = tracer.finished()
        assert "double" in event.name
        assert event.cat == "test"


class TestNullTracer:
    def test_span_is_one_shared_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", cat="c", x=1)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.finished() == []
        with NULL_TRACER.span("a") as sp:
            sp.set(anything="ignored")

    def test_null_span_cost_stays_in_noise(self):
        # A loose ceiling (10us/span) -- the real number is a few
        # hundred ns; this only catches accidental allocation or clock
        # reads sneaking into the disabled path.
        spans = 20_000
        start = time.perf_counter()
        for _ in range(spans):
            with NULL_TRACER.span("probe"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed / spans < 10e-6

    def test_bench_sched_probe_reports_per_span_cost(self):
        from repro.evaluation.sched_bench import null_tracer_probe

        probe = null_tracer_probe(spans=2_000)
        assert probe["spans"] == 2_000
        assert probe["seconds"] >= 0
        assert 0 <= probe["ns_per_span"] < 10_000

    def test_scheduler_hot_paths_carry_no_tracing(self):
        # The per-event loops must stay pure: no span or counter calls.
        import repro.runtime.precompile as precompile
        import repro.runtime.sched as sched

        for module in (sched, precompile):
            source = inspect.getsource(module)
            assert "get_tracer" not in source, module.__name__
            assert "REGISTRY" not in source, module.__name__


# ------------------------------------------------------------------ metrics


class TestRegistry:
    def test_counters_and_gauges(self):
        reg = Registry()
        reg.inc("a.hits")
        reg.inc("a.hits", 4)
        reg.counter("a.misses").value += 2
        reg.set("depth", 3)
        reg.gauge("depth").value = 5
        snap = reg.snapshot()
        assert snap["counters"] == {"a.hits": 5, "a.misses": 2}
        assert snap["gauges"] == {"depth": 5}

    def test_snapshot_is_sorted_and_json_stable(self):
        reg = Registry()
        for name in ("z", "a", "m"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]
        json.dumps(reg.snapshot())

    def test_merge_adds_counters_and_replaces_gauges(self):
        reg = Registry()
        reg.inc("x", 2)
        reg.set("g", 1)
        reg.merge({"counters": {"x": 3, "y": 1}, "gauges": {"g": 9}})
        snap = reg.snapshot()
        assert snap["counters"] == {"x": 5, "y": 1}
        assert snap["gauges"] == {"g": 9}

    def test_reset(self):
        reg = Registry()
        reg.inc("x")
        reg.set("g", 2)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}}

    def test_process_registry_exists(self):
        assert isinstance(REGISTRY, Registry)


# ------------------------------------------------------------------- export


def _golden_spans():
    # Clock steps are binary-exact fractions so the microsecond
    # arithmetic in the exporter is bit-stable.
    tracer, clock = _tracer(pid=7, tid=3)
    clock.advance(1.0)
    with tracer.span("outer", cat="stage", bench="x"):
        clock.advance(0.25)
        with tracer.span("inner"):
            clock.advance(0.5)
    return tracer.finished()


class TestChromeExport:
    def test_golden_payload(self):
        payload = chrome_trace(
            _golden_spans(),
            registry_snapshot={"counters": {"k": 1}, "gauges": {}},
            process_names={7: "test process"},
            thread_names={(7, 3): "main"},
        )
        assert payload == {
            "traceEvents": [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 7,
                    "tid": 0,
                    "args": {"name": "test process"},
                },
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 7,
                    "tid": 3,
                    "args": {"name": "main"},
                },
                {
                    "name": "inner",
                    "cat": "default",
                    "ph": "X",
                    "ts": 250_000.0,
                    "dur": 500_000.0,
                    "pid": 7,
                    "tid": 3,
                },
                {
                    "name": "outer",
                    "cat": "stage",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": 750_000.0,
                    "pid": 7,
                    "tid": 3,
                    "args": {"bench": "x"},
                },
            ],
            "displayTimeUnit": "ms",
            "otherData": {"metrics": {"counters": {"k": 1}, "gauges": {}}},
        }
        assert validate_chrome_trace(payload) == []

    def test_timestamps_rebase_to_zero(self):
        payload = chrome_trace(_golden_spans())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) == 0.0

    def test_write_roundtrips_through_file(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), _golden_spans())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_broken_events(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Q", "name": "x", "pid": 1, "tid": 1},
                    {"ph": "X", "name": "", "pid": 1, "tid": 1,
                     "ts": 0, "dur": 1},
                    {"ph": "X", "name": "ok", "pid": "1", "tid": 1,
                     "ts": -5, "dur": 1},
                    {"ph": "X", "name": "ok", "pid": 1, "tid": 1,
                     "ts": 0},
                    {"ph": "C", "name": "ctr", "pid": 1, "tid": 1,
                     "ts": 0},
                    "not an object",
                ]
            }
        )
        assert len(problems) == 7
        assert validate_chrome_trace(12) != []
        assert validate_chrome_trace({"traceEvents": None}) != []
        assert validate_chrome_trace([]) == []


# ------------------------------------------------ instrumented span taxonomy


class TestInstrumentation:
    def test_frontend_and_passes_emit_spans(self):
        from repro.frontend import compile_source
        from repro.transform.copyprop import optimize_module

        with tracing() as tracer:
            module = compile_source(
                "void main() { int i; for (i = 0; i < 3; i++) {} }"
            )
            optimize_module(module)
        names = {e.name for e in tracer.finished()}
        assert {"frontend.parse", "frontend.lower", "pass.optimize",
                "pass.constfold", "pass.copyprop", "pass.dce",
                "pass.simplify_cfg"} <= names

    def test_null_by_default_emits_nothing(self):
        from repro.frontend import compile_source

        assert get_tracer() is NULL_TRACER
        compile_source("void main() {}")  # must not raise or record
        assert NULL_TRACER.finished() == []
