"""Unit and property tests for the superblock code-generated backend.

``test_backend_differential`` proves whole-corpus identity; these tests
pin down the tier-3 mechanics in isolation: superblock formation (chain
shapes, profile-guided hot-arm choice, the chain-length bound),
fault/limit parity on adversarial programs including mid-superblock
expiry, backend selection and validation, the fused address+memory and
compare+branch specializations, and the ``interp.superblock.*`` /
``interp.codegen.*`` observability counters.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.frontend import compile_source
from repro.ir import Function, IRBuilder, Module, Opcode
from repro.ir.operands import Const
from repro.ir.types import Type
from repro.obs.metrics import REGISTRY, metrics_delta
from repro.runtime import (
    ExecutionLimitExceeded,
    Interpreter,
    RuntimeFault,
    run_module,
)
from repro.runtime.codegen import MAX_CHAIN_BLOCKS, form_superblocks
from repro.runtime.interpreter import (
    _BACKEND_HOOKED,
    _BACKEND_HOOKED_SUPER,
    _BACKEND_SUPER,
)

BACKENDS = ("tree", "decoded", "superblock")

LOOP_SRC = """
void main() {
    int i = 0;
    while (1) { print(i); i = i + 1; }
}
"""

_loop_module = compile_source(LOOP_SRC)


def _chains(module, name="main", profile=None):
    return form_superblocks(module.functions[name], profile)


# ---------------------------------------------------------------- formation


class TestFormation:
    def test_every_block_in_exactly_one_chain(self):
        module = compile_source(
            """
            int f(int n) { if (n < 2) { return n; } return f(n - 1); }
            void main() {
                int i;
                for (i = 0; i < 5; i++) { print(f(i)); }
            }
            """
        )
        for func in module.functions.values():
            chains = form_superblocks(func)
            flat = [b for chain in chains for b in chain]
            assert sorted(flat) == sorted(func.blocks)
            assert len(flat) == len(set(flat))

    def test_entry_heads_first_chain(self):
        chains = _chains(_loop_module)
        assert chains[0][0] == _loop_module.functions["main"].entry.name

    def test_straightline_blocks_collapse_to_one_chain(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        entry = b.start_block("entry")
        mid = b.new_block("mid")
        tail = b.new_block("tail")
        b.br(mid)
        b.set_block(mid)
        b.br(tail)
        b.set_block(tail)
        b.ret()
        assert form_superblocks(func) == [[entry.name, mid.name, tail.name]]

    def test_join_block_starts_its_own_chain(self):
        # Diamond: the join has two predecessors, so neither arm may
        # absorb it -- it must head a chain of its own.
        module = compile_source(
            """
            void main(int n) {
                if (n) { print(1); } else { print(2); }
                print(3);
            }
            """
        )
        func = module.functions["main"]
        chains = form_superblocks(func)
        preds = {}
        for block in func.blocks.values():
            for instr in block.instructions:
                if instr.opcode in (Opcode.BR, Opcode.CBR):
                    for t in instr.targets:
                        preds[t] = preds.get(t, 0) + 1
                    break
        joins = {name for name, count in preds.items() if count > 1}
        assert joins
        heads = {chain[0] for chain in chains}
        assert joins <= heads

    def test_side_exits_target_chain_heads(self):
        # The invariant the generated dispatch relies on: any block a
        # chain branches out to heads some chain.
        for name, func in compile_source(LOOP_SRC).functions.items():
            chains = form_superblocks(func)
            heads = {chain[0] for chain in chains}
            member = {b for chain in chains for b in chain}
            for block in func.blocks.values():
                for instr in block.instructions:
                    if instr.opcode in (Opcode.BR, Opcode.CBR):
                        for target in instr.targets:
                            chain = next(c for c in chains if block.name in c)
                            follows = (
                                block.name != chain[-1]
                                and chain[chain.index(block.name) + 1]
                                == target
                            )
                            if not follows and target in member:
                                assert target in heads
                        break

    def test_profile_prefers_hot_arm(self):
        def build():
            module = Module()
            func = Function("main")
            module.add_function(func)
            b = IRBuilder(func)
            b.start_block("entry")
            cond = b.mov(Const.int(1))
            cold = b.new_block("cold")
            hot = b.new_block("hot")
            b.cbr(cond, cold, hot)
            for block in (cold, hot):
                b.set_block(block)
                b.ret()
            return func, cold.name, hot.name

        func, cold, hot = build()
        profile = {("main", hot): 1000, ("main", cold): 3}
        chains = form_superblocks(func, profile)
        assert chains[0][1] == hot
        # Reversing the temperatures reverses the fused arm.
        chains = form_superblocks(func, {("main", cold): 9, ("main", hot): 1})
        assert chains[0][1] == cold

    def test_chain_length_is_bounded(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        blocks = [b.new_block(f"b{i}") for i in range(MAX_CHAIN_BLOCKS + 10)]
        b.br(blocks[0])
        for current, nxt in zip(blocks, blocks[1:]):
            b.set_block(current)
            b.br(nxt)
        b.set_block(blocks[-1])
        b.ret()
        chains = form_superblocks(func)
        assert max(len(chain) for chain in chains) == MAX_CHAIN_BLOCKS
        flat = [name for chain in chains for name in chain]
        assert sorted(flat) == sorted(func.blocks)


# ------------------------------------------------------------- generated code


class TestGeneratedCode:
    def test_source_is_kept_on_the_compiled_function(self):
        interp = Interpreter(_loop_module, max_instructions=100)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run()
        func = _loop_module.functions["main"]
        sfunc = interp._superblocks[("main", func.version)]
        assert "def __sb" in sfunc.source
        assert sfunc.entry.max_instructions > 0

    def test_superblock_cache_reused_across_runs(self):
        module = compile_source(
            "int g;\nvoid main() { g = g + 1; print(g); }"
        )
        interp = Interpreter(module, backend="superblock")
        assert interp.run().output == ["1"]
        cached = dict(interp._superblocks)
        assert interp.run().output == ["1"]  # memory reset between runs
        assert interp._superblocks == cached  # no recompilation

    def test_fused_pointer_pairs_behave_identically(self):
        module = compile_source(
            """
            int a[4];
            void main() {
                int *p = &a[1];
                p[2] = 7;
                print(a[3]);
                a[0] = 5;
                print(p[0 - 1]);
                print(a[2 - 1]);
            }
            """
        )
        oracle = run_module(module, backend="tree").to_dict()
        for backend in ("decoded", "superblock"):
            assert run_module(module, backend=backend).to_dict() == oracle

    def test_recursion_identity(self):
        module = compile_source(
            """
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            void main() { print(fib(12)); }
            """
        )
        oracle = run_module(module, backend="tree").to_dict()
        for backend in ("decoded", "superblock"):
            assert run_module(module, backend=backend).to_dict() == oracle

    def test_zero_iteration_loops(self):
        module = compile_source(
            """
            void main() {
                int i;
                int n = 0;
                for (i = 0; i < n; i++) { print(i); }
                while (n) { n = n - 1; print(n); }
                print(42);
            }
            """
        )
        oracle = run_module(module, backend="tree").to_dict()
        assert oracle["output"] == ["42"]
        for backend in ("decoded", "superblock"):
            assert run_module(module, backend=backend).to_dict() == oracle


# ------------------------------------------------------------- fault parity


def _fault(module, backend, **kwargs):
    interp = Interpreter(module, backend=backend, **kwargs)
    with pytest.raises(RuntimeFault) as excinfo:
        interp.run()
    return str(excinfo.value), list(interp.output)


class TestFaultParity:
    @pytest.mark.parametrize(
        "body,decls",
        [
            ("print(a[7]);", "int a[4];"),
            ("a[0 - 1] = 1;", "int a[4];"),
            ("int *p = &a[2]; print(p[5]);", "int a[4];"),
            ("int *p = &a[2]; p[5] = 1;", "int a[4];"),
            ("int z = 0; print(1 / z);", ""),
            ("int z = 0; print(1 % z);", ""),
            ("int s = 64; print(1 << s);", ""),
            ("int s = 0 - 1; print(4 >> s);", ""),
        ],
    )
    def test_fault_messages_and_output_identical(self, body, decls):
        module = compile_source(f"{decls}\nvoid main() {{ {body} }}")
        tree = _fault(module, "tree")
        for backend in ("decoded", "superblock"):
            assert _fault(module, backend) == tree

    def test_fault_mid_superblock_after_partial_output(self):
        # The fused region has already printed when the fault fires;
        # the partial output and the message must match the walker's.
        module = compile_source(
            """
            int a[4];
            void main() {
                int i;
                for (i = 0; i < 3; i++) { print(i); }
                print(a[9]);
            }
            """
        )
        tree = _fault(module, "tree")
        assert tree[1] == ["0", "1", "2"]
        for backend in ("decoded", "superblock"):
            assert _fault(module, backend) == tree

    @settings(max_examples=20, deadline=None)
    @given(idx=st.integers(min_value=-6, max_value=12))
    def test_indexing_identity_or_identical_fault(self, idx):
        module = compile_source(
            f"""
            int a[8];
            void main() {{
                int i;
                for (i = 0; i < 8; i++) {{ a[i] = i * i; }}
                print(a[{idx}]);
            }}
            """
        )
        if 0 <= idx < 8:
            oracle = run_module(module, backend="tree").to_dict()
            for backend in ("decoded", "superblock"):
                assert run_module(module, backend=backend).to_dict() == oracle
        else:
            tree = _fault(module, "tree")
            for backend in ("decoded", "superblock"):
                assert _fault(module, backend) == tree


class _HookedRecorder(Interpreter):
    """Instrumented interpreter for the hooked parity matrix."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.count_loads = True
        self.entries = []

    def on_block_entry(self, frame, prev, block):
        self.entries.append((prev.name if prev else None, block.name))


def _hooked_fault(module, backend, exc=RuntimeFault, **kwargs):
    interp = _HookedRecorder(module, backend=backend, **kwargs)
    with pytest.raises(exc) as excinfo:
        interp.run()
    return (
        str(excinfo.value),
        list(interp.output),
        interp.load_count,
        interp.entries,
    )


class TestHookedFaultParity:
    """The hooked tiers fault exactly like the walker, instrumentation
    included: message, partial output, loads counted so far and the
    ``on_block_entry`` sequence up to the fault must all match."""

    @pytest.mark.parametrize(
        "body,decls",
        [
            ("print(a[7]);", "int a[4];"),
            ("a[0 - 1] = 1;", "int a[4];"),
            ("int z = 0; print(1 / z);", ""),
            ("int s = 64; print(1 << s);", ""),
        ],
    )
    def test_hooked_fault_matrix(self, body, decls):
        module = compile_source(f"{decls}\nvoid main() {{ {body} }}")
        tree = _hooked_fault(module, "tree")
        assert _hooked_fault(module, "decoded") == tree
        assert _hooked_fault(module, "superblock") == tree

    def test_hooked_fault_mid_superblock_after_partial_output(self):
        module = compile_source(
            """
            int a[4];
            void main() {
                int i;
                for (i = 0; i < 3; i++) { print(a[i]); }
                print(a[9]);
            }
            """
        )
        tree = _hooked_fault(module, "tree")
        assert tree[1] == ["0", "0", "0"]
        # Three in-bounds loads plus the faulting attempt are counted.
        assert tree[2] == 4
        assert _hooked_fault(module, "decoded") == tree
        assert _hooked_fault(module, "superblock") == tree

    @settings(max_examples=15, deadline=None)
    @given(limit=st.integers(min_value=1, max_value=400))
    def test_hooked_limit_fires_at_identical_instruction(self, limit):
        tree = _hooked_fault(
            _loop_module, "tree", exc=ExecutionLimitExceeded,
            max_instructions=limit,
        )
        for backend in ("decoded", "superblock"):
            assert _hooked_fault(
                _loop_module, backend, exc=ExecutionLimitExceeded,
                max_instructions=limit,
            ) == tree


# ------------------------------------------------------------- limit parity


def _run_limited(module, backend, limit):
    interp = Interpreter(module, max_instructions=limit, backend=backend)
    with pytest.raises(ExecutionLimitExceeded) as excinfo:
        interp.run()
    return str(excinfo.value), list(interp.output), interp.instructions


class TestLimitParity:
    @settings(max_examples=40, deadline=None)
    @given(limit=st.integers(min_value=1, max_value=600))
    def test_limit_fires_at_identical_instruction(self, limit):
        tree = _run_limited(_loop_module, "tree", limit)
        for backend in ("decoded", "superblock"):
            assert _run_limited(_loop_module, backend, limit) == tree

    @settings(max_examples=15, deadline=None)
    @given(limit=st.integers(min_value=1, max_value=400))
    def test_limit_parity_across_calls(self, limit):
        module = compile_source(
            """
            int f(int n) { print(n); return n * 2; }
            void main() {
                int i;
                for (i = 0; i < 100; i++) { f(i); }
            }
            """
        )
        tree = _run_limited(module, "tree", limit)
        for backend in ("decoded", "superblock"):
            assert _run_limited(module, backend, limit) == tree

    def test_exact_budget_completes_on_all_backends(self):
        module = compile_source(
            """
            void main() {
                int i;
                int total = 0;
                for (i = 0; i < 50; i++) { total = total + i; }
                print(total);
            }
            """
        )
        reference = run_module(module, backend="tree")
        limit = reference.instructions
        for backend in BACKENDS:
            run = run_module(module, backend=backend, max_instructions=limit)
            assert run.to_dict() == reference.to_dict()


# ------------------------------------------------------ version-keyed caches


class TestVersionKeyedCaches:
    """Compiled-code caches key on ``Function.version``: mutating the IR
    and bumping the version must recompile, never replay stale code."""

    SRC = "void main() { int x = 3; print(x + 4); }"

    @staticmethod
    def _mutate_const(module, value):
        func = module.functions["main"]
        block = next(iter(func.blocks.values()))
        mov = block.instructions[0]
        assert mov.opcode is Opcode.MOV
        mov.args = (Const(value, Type.INT),)
        func.bump_version()
        return func

    def test_superblock_tier_recompiles_after_bump(self):
        module = compile_source(self.SRC)
        interp = Interpreter(module, backend="superblock")
        assert interp.run().output == ["7"]
        old_version = module.functions["main"].version
        func = self._mutate_const(module, 10)
        assert interp.run().output == ["14"]
        assert ("main", old_version) in interp._superblocks
        assert ("main", func.version) in interp._superblocks

    def test_hooked_superblock_tier_recompiles_after_bump(self):
        module = compile_source(self.SRC)
        interp = Interpreter(module)
        interp.count_loads = True
        assert interp.run().output == ["7"]
        old_version = module.functions["main"].version
        func = self._mutate_const(module, 10)
        assert interp.run().output == ["14"]
        generations = {key[:2] for key in interp._hooked_superblocks}
        assert {("main", old_version), ("main", func.version)} <= generations

    def test_decoded_tier_recompiles_after_bump(self):
        module = compile_source(self.SRC)
        interp = Interpreter(module, backend="decoded")
        assert interp.run().output == ["7"]
        old_version = module.functions["main"].version
        func = self._mutate_const(module, 10)
        assert interp.run().output == ["14"]
        generations = {key[:2] for key in interp._decoded}
        assert {("main", old_version), ("main", func.version)} <= generations


# -------------------------------------------------------- backend selection


class TestBackendSelection:
    def test_superblock_backend_is_pinnable(self):
        interp = Interpreter(_loop_module, backend="superblock")
        assert interp._backend_mode() == _BACKEND_SUPER

    def test_listeners_demote_to_hooked_variant(self):
        interp = Interpreter(_loop_module, backend="superblock")
        interp.block_listener = lambda f, p, b, c: None
        assert interp._backend_mode() == _BACKEND_HOOKED

    def test_superblock_backend_rejects_core_overrides(self):
        class Tracing(Interpreter):
            def eval_operand(self, operand, frame):
                return super().eval_operand(operand, frame)

        with pytest.raises(ValueError, match="eval_operand"):
            Tracing(_loop_module, backend="superblock")


# ------------------------------------------------------- hooked equivalence


class TestHookedEquivalence:
    SRC = """
    int a[16];
    void main() {
        int i;
        int total = 0;
        for (i = 0; i < 16; i++) { a[i] = i; }
        for (i = 0; i < 16; i++) { total = total + a[i]; }
        print(total);
    }
    """

    def test_count_loads_matches_tree(self):
        module = compile_source(self.SRC)

        def loads(backend):
            interp = Interpreter(module, backend=backend)
            interp.count_loads = True
            result = interp.run()
            return interp.load_count, result.to_dict()

        assert loads("auto") == loads("tree")

    def test_on_block_entry_sequence_matches_tree(self):
        module = compile_source(self.SRC)

        class Entries(Interpreter):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.entries = []

            def on_block_entry(self, frame, prev, block):
                self.entries.append(
                    (prev.name if prev else None, block.name)
                )

        auto = Entries(module)
        assert auto._backend_mode() == _BACKEND_HOOKED_SUPER
        tree = Entries(module, backend="tree")
        assert auto.run().to_dict() == tree.run().to_dict()
        assert auto.entries == tree.entries


# ------------------------------------------------------------------ counters


def _delta(run):
    before = REGISTRY.snapshot()
    run()
    return metrics_delta(before, REGISTRY.snapshot())["counters"]


class TestCounters:
    def test_superblock_run_bumps_formation_counters(self):
        module = compile_source(self.FUSION_SRC)
        counters = _delta(lambda: run_module(module, backend="superblock"))
        assert counters["interp.backend.superblock"] == 1
        assert counters["interp.superblock.formed"] >= 1
        assert counters["interp.codegen.functions"] >= 1
        assert counters.get("interp.superblock.blocks_fused", 0) >= 1
        assert counters.get("interp.codegen.specialized_ops", 0) >= 1

    FUSION_SRC = """
    int a[4];
    void main() {
        int i;
        for (i = 0; i < 4; i++) { a[i] = i * 3; }
        int *p = &a[1];
        print(p[2]);
    }
    """

    def test_compilation_happens_once_per_interpreter(self):
        module = compile_source(self.FUSION_SRC)
        interp = Interpreter(module, backend="superblock")
        first = _delta(interp.run)
        again = _delta(interp.run)
        assert first["interp.codegen.functions"] >= 1
        assert "interp.codegen.functions" not in again

    def test_budget_expiry_counts_a_fallback(self):
        counters = _delta(
            lambda: pytest.raises(
                ExecutionLimitExceeded,
                run_module,
                _loop_module,
                backend="superblock",
                max_instructions=123,
            )
        )
        assert counters.get("interp.superblock.fallbacks", 0) >= 1

    def test_unlimited_run_needs_no_fallback(self):
        module = compile_source(self.FUSION_SRC)
        counters = _delta(lambda: run_module(module, backend="superblock"))
        assert counters.get("interp.superblock.fallbacks", 0) == 0
