"""Tests for the generic dataflow framework."""

from repro.analysis.cfg import CFGView
from repro.analysis.dataflow import DataflowProblem, solve_dataflow

from tests.helpers import build_cfg

import pytest

DIAMOND = {"A": ["B", "C"], "B": ["D"], "C": ["D"], "D": []}


def gen_kill_transfer(gen, kill):
    def transfer(name, fact):
        return frozenset((set(fact) - kill.get(name, set())) | gen.get(name, set()))

    return transfer


class TestForwardUnion:
    def test_reaching_facts_merge_at_join(self):
        gen = {"B": {"b"}, "C": {"c"}}
        problem = DataflowProblem(
            direction="forward",
            meet="union",
            transfer=gen_kill_transfer(gen, {}),
        )
        result = solve_dataflow(CFGView(build_cfg(DIAMOND)), problem)
        assert result.inputs["D"] == {"b", "c"}

    def test_kill_removes_facts(self):
        gen = {"A": {"x"}}
        kill = {"B": {"x"}}
        problem = DataflowProblem(
            direction="forward",
            meet="union",
            transfer=gen_kill_transfer(gen, kill),
        )
        result = solve_dataflow(CFGView(build_cfg(DIAMOND)), problem)
        # x survives the C path but not the B path; union keeps it at D.
        assert "x" in result.inputs["D"]
        assert "x" not in result.outputs["B"]


class TestForwardIntersection:
    def test_must_analysis_drops_one_sided_facts(self):
        gen = {"B": {"b"}, "C": {"c"}, "A": {"a"}}
        problem = DataflowProblem(
            direction="forward",
            meet="intersection",
            transfer=gen_kill_transfer(gen, {}),
            boundary=frozenset(),
            universe=frozenset({"a", "b", "c"}),
        )
        result = solve_dataflow(CFGView(build_cfg(DIAMOND)), problem)
        # Only 'a' is available on all paths into D.
        assert result.inputs["D"] == {"a"}

    def test_loop_converges(self):
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["H"], "X": []}
        gen = {"A": {"a"}, "B": {"b"}}
        problem = DataflowProblem(
            direction="forward",
            meet="intersection",
            transfer=gen_kill_transfer(gen, {}),
            universe=frozenset({"a", "b"}),
        )
        result = solve_dataflow(CFGView(build_cfg(graph)), problem)
        # 'a' is available everywhere; 'b' only after the first iteration,
        # so not on the entry path into H.
        assert result.inputs["H"] == {"a"}
        assert result.inputs["X"] == {"a"}


class TestBackward:
    def test_backward_union(self):
        # Liveness-style: a fact generated at an exit flows upward.
        gen = {"D": {"d"}}
        problem = DataflowProblem(
            direction="backward",
            meet="union",
            transfer=gen_kill_transfer(gen, {}),
        )
        result = solve_dataflow(CFGView(build_cfg(DIAMOND)), problem)
        # outputs hold the fact at block *entry* for backward problems.
        assert "d" in result.outputs["A"]
        assert "d" in result.outputs["B"]


class TestValidation:
    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            DataflowProblem(
                direction="sideways", meet="union", transfer=lambda n, f: f
            )

    def test_bad_meet_rejected(self):
        with pytest.raises(ValueError):
            DataflowProblem(
                direction="forward", meet="subtract", transfer=lambda n, f: f
            )
