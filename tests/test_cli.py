"""Tests for the CLI."""

import pytest

from repro.cli import main

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 40; i++) {
        int k = 0;
        int f = 0;
        while (k < 30) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_run_prints_output(program_file, capsys):
    assert main(["run", program_file]) == 0
    out = capsys.readouterr().out
    assert out.strip().isdigit()


def test_ir_dump(program_file, capsys):
    assert main(["ir", program_file]) == 0
    out = capsys.readouterr().out
    assert "func void main" in out
    assert "loadg" in out or "storeg" in out


def test_parallelize_reports_speedup(program_file, capsys):
    assert main(["parallelize", program_file, "--cores", "4"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "output identical:  True" in out


def test_bench_command(capsys):
    assert main(["bench", "mcf", "--cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "speedup" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_suite_cache_stats_report(monkeypatch, tmp_path, capsys):
    import json

    from repro.bench import suite as bench_suite
    from repro.evaluation import runner as runner_mod

    spec = bench_suite.BenchmarkSpec(
        "tinycli", "synthetic CLI test bench", lambda scale: PROGRAM, 1.0, "test"
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinycli", spec)
    monkeypatch.setattr(runner_mod, "benchmark_names", lambda: ["tinycli"])

    cache_dir = str(tmp_path / "cache")
    report = tmp_path / "suite.json"
    argv = [
        "suite", "--cores", "4", "--cache-dir", cache_dir,
        "--stats", "--report", str(report),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out
    assert "Pipeline stage statistics" in out
    cold = json.loads(report.read_text())
    assert "tinycli" in cold["speedups"]
    assert cold["stages"]["execute"]["computes"] == 1

    # Warm re-run: identical figure output, all interpretation cached.
    assert main(argv) == 0
    warm_out = capsys.readouterr().out
    warm = json.loads(report.read_text())
    assert warm_out.split("Pipeline")[0] == out.split("Pipeline")[0]
    assert warm["stages"]["execute"]["computes"] == 0
    assert warm["stages"]["execute"]["disk_hits"] == 1
    assert warm["wall_seconds"] < cold["wall_seconds"] * 1.5


def test_bench_interp_report(monkeypatch, tmp_path, capsys):
    import json

    from repro.bench import suite as bench_suite

    spec = bench_suite.BenchmarkSpec(
        "tinyinterp", "synthetic interp bench", lambda scale: PROGRAM, 1.0,
        "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinyinterp", spec)

    out_path = tmp_path / "BENCH_interp.json"
    argv = [
        "bench-interp", "--benches", "tinyinterp",
        "--repeat", "2", "--out", str(out_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "tinyinterp" in out
    assert "speedup" in out
    report = json.loads(out_path.read_text())
    assert report["repeat"] == 2
    (program,) = report["programs"]
    assert program["name"] == "tinyinterp"
    assert program["instructions"] > 0
    assert program["tree_seconds"] > 0
    assert program["decoded_seconds"] > 0
    assert report["summary"]["geomean_speedup"] == pytest.approx(
        program["speedup"]
    )


def test_bench_interp_min_speedup_gate(monkeypatch, tmp_path, capsys):
    from repro.bench import suite as bench_suite

    spec = bench_suite.BenchmarkSpec(
        "tinyinterp", "synthetic interp bench", lambda scale: PROGRAM, 1.0,
        "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinyinterp", spec)

    # An impossible threshold must fail the run (this is the CI gate).
    argv = [
        "bench-interp", "--benches", "tinyinterp",
        "--out", "", "--min-speedup", "1000000",
    ]
    assert main(argv) == 1
    assert "below required" in capsys.readouterr().err

def test_trace_command_writes_valid_perfetto_json(
    monkeypatch, tmp_path, capsys
):
    import json

    from repro.bench import suite as bench_suite
    from repro.obs import validate_chrome_trace

    spec = bench_suite.BenchmarkSpec(
        "tinytrace", "synthetic trace bench", lambda scale: PROGRAM, 1.0,
        "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinytrace", spec)

    out_path = tmp_path / "trace.json"
    argv = ["trace", "tinytrace", "-o", str(out_path), "--sim-timeline"]
    assert main(argv) == 0
    assert "ui.perfetto.dev" in capsys.readouterr().err
    payload = json.loads(out_path.read_text())
    assert validate_chrome_trace(payload) == []
    names = {
        e["name"] for e in payload["traceEvents"] if e["ph"] == "X"
    }
    # Wall-clock spans cover the pipeline end to end...
    for required in (
        "frontend.lower",
        "stage.compile",
        "stage.execute",
        "helix.step1.normalize",
        "helix.step9.version",
        "analysis.dependence",
        "select.choose_loops",
        "exec.parallel",
    ):
        assert required in names, required
    # ...and the simulated timeline has one track per core.
    sim_tids = {
        e["tid"]
        for e in payload["traceEvents"]
        if e.get("cat") == "sim" and e["ph"] == "X"
    }
    assert sim_tids == set(range(6))
    assert payload["otherData"]["metrics"]["counters"]


def test_run_trace_flag(program_file, tmp_path, capsys):
    import json

    from repro.obs import NULL_TRACER, get_tracer, validate_chrome_trace

    out_path = tmp_path / "run.json"
    assert main(["run", program_file, "--trace", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert validate_chrome_trace(payload) == []
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert "frontend.lower" in names
    # The scoped tracer was uninstalled on the way out.
    assert get_tracer() is NULL_TRACER
