"""Tests for the CLI."""

import pytest

from repro.cli import main

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 40; i++) {
        int k = 0;
        int f = 0;
        while (k < 30) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_run_prints_output(program_file, capsys):
    assert main(["run", program_file]) == 0
    out = capsys.readouterr().out
    assert out.strip().isdigit()


def test_ir_dump(program_file, capsys):
    assert main(["ir", program_file]) == 0
    out = capsys.readouterr().out
    assert "func void main" in out
    assert "loadg" in out or "storeg" in out


def test_parallelize_reports_speedup(program_file, capsys):
    assert main(["parallelize", program_file, "--cores", "4"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "output identical:  True" in out


def test_bench_command(capsys):
    assert main(["bench", "mcf", "--cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "speedup" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
