"""Tests for the MiniC parser (AST shapes and diagnostics)."""

import pytest

from repro.frontend import MiniCError, parse
from repro.frontend import ast_nodes as ast


def parse_main(body):
    program = parse("void main() { %s }" % body)
    func = program.items[-1]
    assert isinstance(func, ast.FuncDef)
    return func.body.statements


def parse_expr(text):
    statements = parse_main(f"x = {text};")
    assign = statements[0]
    assert isinstance(assign, ast.Assign)
    return assign.value


class TestTopLevel:
    def test_globals_and_functions(self):
        program = parse("int g; float arr[4]; void main() { }")
        assert isinstance(program.items[0], ast.GlobalDecl)
        assert program.items[1].array_size == 4
        assert isinstance(program.items[2], ast.FuncDef)

    def test_global_initializers(self):
        program = parse("int a = 5; int b[3] = {1, 2, 3}; float c = -1.5; void main(){}")
        assert program.items[0].init == [5]
        assert program.items[1].init == [1, 2, 3]
        assert program.items[2].init == [-1.5]

    def test_function_params(self):
        program = parse("int f(int a, float b, int *p) { return a; } void main(){}")
        params = program.items[0].params
        assert [p.name for p in params] == ["a", "b", "p"]
        assert params[2].type.is_pointer

    def test_void_param_rejected(self):
        with pytest.raises(MiniCError):
            parse("int f(void x) { return 0; } void main(){}")

    def test_junk_at_top_level(self):
        with pytest.raises(MiniCError):
            parse("42;")


class TestStatements:
    def test_declarations(self):
        stmts = parse_main("int x; float y = 1.0; int buf[8];")
        assert isinstance(stmts[0], ast.VarDecl) and stmts[0].init is None
        assert stmts[1].init is not None
        assert stmts[2].array_size == 8

    def test_if_else(self):
        stmts = parse_main("if (x) { y = 1; } else y = 2;")
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.orelse, ast.Block)

    def test_while(self):
        stmts = parse_main("while (i < 10) i = i + 1;")
        assert isinstance(stmts[0], ast.While)

    def test_for_full(self):
        stmts = parse_main("for (i = 0; i < 10; i++) { }")
        node = stmts[0]
        assert isinstance(node, ast.For)
        assert node.init is not None and node.cond is not None
        assert isinstance(node.step, ast.Assign)

    def test_for_empty_clauses(self):
        stmts = parse_main("for (;;) { break; }")
        node = stmts[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_break_continue_return(self):
        stmts = parse_main("while (1) { break; } while (1) { continue; } return;")
        assert isinstance(stmts[0].body.statements[0], ast.Break)
        assert isinstance(stmts[1].body.statements[0], ast.Continue)
        assert isinstance(stmts[2], ast.Return)

    def test_compound_assignment_desugars(self):
        stmts = parse_main("x += 3;")
        node = stmts[0]
        assert isinstance(node, ast.Assign) and node.op == "+"

    def test_increment_decrement(self):
        stmts = parse_main("x++; y--;")
        assert stmts[0].op == "+" and stmts[1].op == "-"
        assert isinstance(stmts[0].value, ast.IntLit)

    def test_empty_statement(self):
        stmts = parse_main(";")
        assert isinstance(stmts[0], ast.Block) and not stmts[0].statements

    def test_unterminated_block(self):
        with pytest.raises(MiniCError):
            parse("void main() { if (1) {")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.left.op == "-"

    def test_comparison_precedence(self):
        expr = parse_expr("a + 1 < b * 2")
        assert expr.op == "<"

    def test_logical_precedence(self):
        expr = parse_expr("a == 1 && b || c")
        assert expr.op == "||" and expr.left.op == "&&"

    def test_shift_and_bitwise(self):
        expr = parse_expr("a << 2 | b & 3")
        assert expr.op == "|"
        assert expr.left.op == "<<"
        assert expr.right.op == "&"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_unary(self):
        expr = parse_expr("-a")
        assert isinstance(expr, ast.Unary) and expr.op == "-"
        expr = parse_expr("!x")
        assert expr.op == "!"
        expr = parse_expr("*p")
        assert expr.op == "*"
        expr = parse_expr("&a[0]")
        assert expr.op == "&" and isinstance(expr.operand, ast.Index)

    def test_indexing_chain(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Binary)

    def test_call_with_args(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3
        assert isinstance(expr.args[1], ast.Call)

    def test_assignment_to_deref(self):
        stmts = parse_main("*p = 5;")
        node = stmts[0]
        assert isinstance(node.target, ast.Unary) and node.target.op == "*"

    def test_missing_semicolon(self):
        with pytest.raises(MiniCError):
            parse("void main() { x = 1 }")

    def test_bad_expression_token(self):
        with pytest.raises(MiniCError):
            parse("void main() { x = ; }")
