"""Unit tests for the pre-decoded interpreter backend.

Whole-program identity with the tree-walker lives in
``test_backend_differential``; these tests pin down the decode layer's
mechanics — slot allocation, backend selection, fault/limit parity on
constructed edge cases, and decode caching.
"""

import pytest

from repro.frontend import compile_source
from repro.ir import Function, Instruction, IRBuilder, Module, Opcode
from repro.ir.operands import Const, VReg
from repro.ir.types import Type
from repro.runtime import (
    ExecutionLimitExceeded,
    Interpreter,
    RuntimeFault,
    run_module,
)
from repro.runtime import precompile
from repro.runtime.interpreter import (
    _BACKEND_FAST,
    _BACKEND_HOOKED,
    _BACKEND_HOOKED_SUPER,
    _BACKEND_SUPER,
    _BACKEND_TREE,
)

COUNT_SRC = """
int total;
void main() {
    int i;
    for (i = 0; i < 50; i++) { total = total + i; }
    print(total);
}
"""


def _fault_message(module, backend, **kwargs):
    with pytest.raises(RuntimeFault) as excinfo:
        run_module(module, backend=backend, **kwargs)
    return str(excinfo.value)


class TestSlotAllocation:
    def test_registers_get_dense_distinct_slots(self):
        module = compile_source(COUNT_SRC)
        interp = Interpreter(module)
        dfunc = precompile.decode_function(
            interp, module.functions["main"], hooked=False
        )
        uids = set()
        for block in module.functions["main"].blocks.values():
            for instr in block.instructions:
                if instr.dest is not None:
                    uids.add(instr.dest.uid)
                for arg in instr.args:
                    if isinstance(arg, VReg):
                        uids.add(arg.uid)
        assert dfunc.nslots == len(uids)

    def test_param_slots_receive_arguments(self):
        module = compile_source(
            "int add3(int a, int b, int c) { return a + b + c; }\n"
            "void main() { print(add3(1, 2, 3)); }"
        )
        interp = Interpreter(module)
        func = module.functions["add3"]
        dfunc = precompile.decode_function(interp, func, hooked=False)
        assert len(dfunc.param_slots) == 3
        assert len(set(dfunc.param_slots)) == 3
        assert all(0 <= s < dfunc.nslots for s in dfunc.param_slots)
        assert run_module(module, backend="decoded").output == ["6"]


class TestBackendSelection:
    def test_plain_interpreter_uses_superblock_path(self):
        interp = Interpreter(compile_source(COUNT_SRC))
        assert interp._backend_mode() == _BACKEND_SUPER

    def test_backend_decoded_pins_fast_variant(self):
        interp = Interpreter(compile_source(COUNT_SRC), backend="decoded")
        assert interp._backend_mode() == _BACKEND_FAST

    def test_listeners_select_hooked_variant(self):
        interp = Interpreter(compile_source(COUNT_SRC))
        interp.block_listener = lambda f, p, b, c: None
        assert interp._backend_mode() == _BACKEND_HOOKED
        interp.block_listener = None
        assert interp._backend_mode() == _BACKEND_SUPER
        interp.call_listener = lambda n, e, c: None
        assert interp._backend_mode() == _BACKEND_HOOKED

    def test_count_loads_selects_hooked_superblock_tier(self):
        interp = Interpreter(compile_source(COUNT_SRC))
        interp.count_loads = True
        assert interp._backend_mode() == _BACKEND_HOOKED_SUPER

    def test_count_loads_with_decoded_backend_selects_hooked_variant(self):
        interp = Interpreter(compile_source(COUNT_SRC), backend="decoded")
        interp.count_loads = True
        assert interp._backend_mode() == _BACKEND_HOOKED

    def test_core_override_subclass_falls_back_to_tree(self):
        class Tracing(Interpreter):
            def exec_instr(self, frame, instr):
                return super().exec_instr(frame, instr)

        interp = Tracing(compile_source(COUNT_SRC))
        assert interp._backend_mode() == _BACKEND_TREE

    def test_instance_core_monkeypatch_falls_back_to_tree(self):
        interp = Interpreter(compile_source(COUNT_SRC))
        interp.exec_instr = lambda frame, instr: None
        assert interp._backend_mode() == _BACKEND_TREE

    def test_instance_hook_monkeypatch_selects_hooked_superblock(self):
        interp = Interpreter(compile_source(COUNT_SRC))
        interp.exec_sync = lambda frame, instr: None
        assert interp._backend_mode() == _BACKEND_HOOKED_SUPER

    def test_hook_override_subclass_selects_hooked_superblock(self):
        class Hooked(Interpreter):
            def on_block_entry(self, frame, prev, block):
                pass

        interp = Hooked(compile_source(COUNT_SRC))
        assert interp._backend_mode() == _BACKEND_HOOKED_SUPER

    def test_backend_tree_forces_walker(self):
        interp = Interpreter(compile_source(COUNT_SRC), backend="tree")
        assert interp._backend_mode() == _BACKEND_TREE

    def test_backend_decoded_rejects_core_overrides(self):
        class Tracing(Interpreter):
            def eval_operand(self, operand, frame):
                return super().eval_operand(operand, frame)

        with pytest.raises(ValueError, match="eval_operand"):
            Tracing(compile_source(COUNT_SRC), backend="decoded")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Interpreter(compile_source(COUNT_SRC), backend="jit")

    def test_tree_and_decoded_results_match(self):
        module = compile_source(COUNT_SRC)
        tree = run_module(module, backend="tree")
        decoded = run_module(module, backend="decoded")
        assert tree.to_dict() == decoded.to_dict()


class TestFaultParity:
    def test_undefined_register_message(self):
        module = Module()
        func = Function("main", Type.INT)
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        ghost = VReg(uid=999, type=Type.INT, name="ghost")
        b.emit(
            Instruction(
                Opcode.ADD,
                dest=VReg(uid=1000, type=Type.INT),
                args=(ghost, Const.int(1)),
            )
        )
        b.ret(Const.int(0))
        assert _fault_message(module, "tree") == _fault_message(
            module, "decoded"
        )
        assert "undefined register" in _fault_message(module, "decoded")

    @pytest.mark.parametrize(
        "body,decls",
        [
            ("print(a[7]);", "int a[4];"),
            ("a[0 - 1] = 1;", "int a[4];"),
            ("int *p = &a[2]; print(p[5]);", "int a[4];"),
            ("int *p = &a[2]; p[5] = 1;", "int a[4];"),
            ("int z = 0; print(1 / z);", ""),
            ("int z = 0; print(1 % z);", ""),
            ("int s = 64; print(1 << s);", ""),
        ],
    )
    def test_fault_messages_identical(self, body, decls):
        module = compile_source(f"{decls}\nvoid main() {{ {body} }}")
        assert _fault_message(module, "tree") == _fault_message(
            module, "decoded"
        )

    def test_unterminated_block_message(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        b.start_block("entry")
        b.mov(Const.int(1))  # no terminator follows
        assert _fault_message(module, "tree") == _fault_message(
            module, "decoded"
        )
        assert "without terminator" in _fault_message(module, "decoded")


class TestLimitParity:
    def _run_limited(self, module, backend, limit):
        interp = Interpreter(module, max_instructions=limit, backend=backend)
        with pytest.raises(ExecutionLimitExceeded) as excinfo:
            interp.run()
        return str(excinfo.value), list(interp.output), interp.instructions

    @pytest.mark.parametrize("limit", [1, 7, 50, 123, 499])
    def test_limit_fires_at_identical_instruction(self, limit):
        module = compile_source(
            """
            void main() {
                int i = 0;
                while (1) { print(i); i = i + 1; }
            }
            """
        )
        tree = self._run_limited(module, "tree", limit)
        decoded = self._run_limited(module, "decoded", limit)
        assert tree == decoded

    def test_limit_parity_across_calls(self):
        module = compile_source(
            """
            int f(int n) { print(n); return n * 2; }
            void main() {
                int i;
                for (i = 0; i < 100; i++) { f(i); }
            }
            """
        )
        reference = run_module(module, backend="tree")
        for limit in (5, 37, reference.instructions - 1):
            tree = self._run_limited(module, "tree", limit)
            decoded = self._run_limited(module, "decoded", limit)
            assert tree == decoded

    def test_exact_budget_completes_on_both(self):
        module = compile_source(COUNT_SRC)
        reference = run_module(module, backend="tree")
        limit = reference.instructions
        tree = run_module(module, backend="tree", max_instructions=limit)
        decoded = run_module(module, backend="decoded", max_instructions=limit)
        assert tree.to_dict() == decoded.to_dict() == reference.to_dict()


class TestDecodedState:
    def test_memory_resets_between_runs(self):
        module = compile_source(
            "int g;\nvoid main() { g = g + 1; print(g); }"
        )
        interp = Interpreter(module, backend="decoded")
        assert interp.run().output == ["1"]
        assert interp.run().output == ["1"]

    def test_decode_cache_reused_across_runs(self):
        module = compile_source(COUNT_SRC)
        interp = Interpreter(module, backend="decoded")
        interp.run()
        cached = dict(interp._decoded)
        interp.run()
        assert interp._decoded == cached  # no re-decode on the second run

    def test_hooked_and_fast_variants_cached_separately(self):
        module = compile_source(COUNT_SRC)
        interp = Interpreter(module, backend="decoded")
        interp.run()
        interp.block_listener = lambda f, p, b, c: None
        interp.run()
        hooked_flags = {key[2] for key in interp._decoded}
        assert hooked_flags == {False, True}

    def test_listener_events_match_tree_backend(self):
        module = compile_source(COUNT_SRC)

        def collect(backend):
            events = []
            interp = Interpreter(module, backend=backend)
            interp.block_listener = lambda f, p, b, c: events.append(
                (f, p, b, c)
            )
            interp.call_listener = lambda n, e, c: events.append((n, e, c))
            interp.run()
            return events

        assert collect("tree") == collect("decoded")
