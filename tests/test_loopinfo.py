"""Tests for the ParallelizedLoop metadata and HelixOptions."""

import pytest

from repro.analysis.dependence import DataDependence, DependenceKind
from repro.core.loopinfo import DepSync, HelixOptions, ParallelizedLoop


def make_dep(index, kind=DependenceKind.RAW):
    return DataDependence(
        index=index, kind=kind, location="g", sources=[], sinks=[]
    )


def make_info(**kwargs):
    return ParallelizedLoop(
        loop_id=("main", "L"),
        func_name="main",
        seq_header="L",
        guard_block="g",
        par_preheader="pp",
        par_header="ph",
        par_latch="lt",
        **kwargs,
    )


class TestParallelizedLoop:
    def test_synchronized_deps_filter(self):
        info = make_info()
        a = DepSync(dep=make_dep(0), region=frozenset({"b"}))
        b = DepSync(dep=make_dep(1), region=frozenset({"b"}))
        b.synchronized = False
        info.deps = [a, b]
        assert info.synchronized_deps == [a]
        assert info.segments_per_iteration == 1

    def test_dep_by_index(self):
        info = make_info()
        sync = DepSync(dep=make_dep(7), region=frozenset())
        info.deps = [sync]
        assert info.dep_by_index(7) is sync
        with pytest.raises(KeyError):
            info.dep_by_index(0)

    def test_code_size(self):
        info = make_info()
        info.par_instruction_count = 100
        assert info.code_size_bytes() == 400
        assert info.code_size_bytes(bytes_per_instruction=8) == 800

    def test_default_options(self):
        options = HelixOptions()
        assert options.enable_signal_optimization
        assert options.enable_helper_threads
        assert options.enable_prefetch_balancing
        assert options.enable_inlining
        assert options.enable_segment_scheduling


class TestDepSync:
    def test_index_delegates_to_dep(self):
        sync = DepSync(dep=make_dep(3), region=frozenset())
        assert sync.index == 3

    def test_defaults(self):
        sync = DepSync(dep=make_dep(0), region=frozenset())
        assert sync.synchronized
        assert sync.covered_by is None
        assert sync.wait_instrs == [] and sync.signal_instrs == []
