"""Shared pytest configuration.

Points the CLI's default results store at a per-test temporary
directory, so bench/suite commands invoked inside tests never write
run records into the developer's working tree (`.repro-results`).
Tests that exercise the store explicitly pass ``--results-dir``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_results_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results-store"))
