"""Differential tests: simulated-time timeline vs the trace scheduler.

The per-core segments exported by :mod:`repro.obs.timeline` re-derive
the scheduler's placement, so on the full sched-differential grid
(every source shape x every machine) their category totals must equal
the :class:`ScheduleResult` aggregates *exactly*, segments on one core
must never overlap, and the busy+idle accounting must close to
``parallel_cycles * cores``.
"""

import pytest

from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.timeline import (
    CATEGORIES,
    core_totals,
    invocation_segments,
    run_timeline,
    timeline_block,
    timeline_events,
)
from tests.test_sched_differential import MACHINES, SOURCES, _prepare


def _assert_no_overlap(segments):
    per_core = {}
    for seg in segments:
        assert seg.end > seg.start, "zero/negative-length segment emitted"
        per_core.setdefault(seg.core, []).append(seg)
    for segs in per_core.values():
        segs.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(segs, segs[1:]):
            assert a.end <= b.start, f"overlap: {a} vs {b}"


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_invocation_segments_match_schedule_breakdown(name):
    _, _, executor, _ = _prepare(name)
    info_by_id = {info.loop_id: info for info in executor.infos}
    for machine in MACHINES:
        schedules = executor.schedules(machine)
        for trace, sched in zip(executor.traces, schedules):
            segments = invocation_segments(
                trace, info_by_id[trace.loop_id], machine
            )
            if trace.iteration_count == 0:
                assert segments == []
                continue
            _assert_no_overlap(segments)
            totals = {category: 0 for category in CATEGORIES}
            for seg in segments:
                totals[seg.category] += seg.cycles
            breakdown = sched.overhead_breakdown()
            # Exact per-bucket equality with the scheduler's aggregates.
            assert totals["compute"] == breakdown["compute"]
            assert totals["stall"] == breakdown["wait_stall"]
            assert totals["signal"] == breakdown["signal"]
            assert totals["transfer"] == breakdown["transfer"]
            assert totals["sequential"] == 0

            last_end = max(seg.end for seg in segments)
            assert last_end == sched.parallel_cycles

            # busy + idle closes to parallel_cycles * cores with
            # nonnegative idle on every core -- equivalently, the
            # breakdown sums to total area minus idle/config/collect.
            cores = machine.cores
            busy = [0] * cores
            for seg in segments:
                busy[seg.core] += seg.cycles
            idle = [sched.parallel_cycles - b for b in busy]
            assert all(i >= 0 for i in idle)
            assert sum(busy) + sum(idle) == sched.parallel_cycles * cores
            assert sum(breakdown.values()) == (
                sched.parallel_cycles * cores
                - sum(idle)
                - totals["config"]
                - totals["collect"]
            )


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_run_timeline_covers_the_whole_run(name):
    _, _, executor, _ = _prepare(name)
    segments = run_timeline(executor)
    _assert_no_overlap(segments)
    assert max(seg.end for seg in segments) == executor.cycles
    assert min(seg.start for seg in segments) == 0

    # Bucket totals over the whole run equal the per-invocation schedule
    # sums, on the executing machine and on a replayed one.
    for machine in (executor.machine, MACHINES[0], MACHINES[-1]):
        schedules = executor.schedules(machine)
        totals = {category: 0 for category in CATEGORIES}
        for seg in run_timeline(executor, machine):
            totals[seg.category] += seg.cycles
        assert totals["compute"] == sum(s.compute_cycles for s in schedules)
        assert totals["stall"] == sum(
            s.wait_stall_cycles for s in schedules
        )
        assert totals["signal"] == sum(s.signal_cycles for s in schedules)
        assert totals["transfer"] == sum(
            s.transfer_cycles for s in schedules
        )


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_timeline_block_aggregates(name):
    _, _, executor, _ = _prepare(name)
    block = timeline_block(executor)
    assert block["cores"] == executor.machine.cores
    assert block["total_cycles"] == executor.cycles
    assert len(block["per_core"]) == executor.machine.cores
    for category in CATEGORIES:
        assert block["totals"][category] == sum(
            row[category] for row in block["per_core"]
        )
    # Everything ran on core 0's track or a worker core; the run did
    # something, so compute plus sequential is nonzero.
    assert block["totals"]["compute"] + block["totals"]["sequential"] > 0

    replay = timeline_block(executor, MACHINES[0])
    assert replay["cores"] == MACHINES[0].cores
    assert replay["total_cycles"] is None


def test_timeline_events_are_valid_chrome_events():
    _, _, executor, _ = _prepare("reduction")
    segments = run_timeline(executor)
    events = timeline_events(segments, executor.machine, pid=0)
    payload = chrome_trace([], extra_events=events)
    assert validate_chrome_trace(payload) == []
    tracks = {e["tid"] for e in events if e.get("cat") == "sim"}
    assert tracks <= set(range(executor.machine.cores))
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert "process_name" in names and "thread_name" in names
