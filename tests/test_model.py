"""Tests for the speedup model (Equation 1 and the refined estimate)."""

import pytest

from repro.analysis.loopnest import LoopId
from repro.core.model import (
    LoopModelInputs,
    SpeedupModel,
    speedup_from_fractions,
)
from repro.runtime.machine import MachineConfig


def make_loop(
    total=100_000.0,
    parallel=90_000.0,
    segment=5_000.0,
    prologue=5_000.0,
    iterations=1000,
    invocations=1,
    segments=1,
    words=0.0,
    counted=True,
):
    return LoopModelInputs(
        loop_id=("main", "L"),
        invocations=invocations,
        iterations=iterations,
        total_cycles=total,
        parallel_cycles=parallel,
        segment_cycles=segment,
        prologue_cycles=prologue,
        segments_per_iteration=segments,
        transfer_words_per_iteration=words,
        counted=counted,
    )


def model(signal_cost=None, program=1_000_000.0):
    return SpeedupModel(
        MachineConfig(cores=6), program_cycles=program, signal_cost=signal_cost
    )


class TestEquationOne:
    def test_pure_amdahl(self):
        assert speedup_from_fractions(1.0, 4) == pytest.approx(4.0)
        assert speedup_from_fractions(0.5, 4) == pytest.approx(1.6)
        assert speedup_from_fractions(0.0, 4) == pytest.approx(1.0)

    def test_overhead_reduces_speedup(self):
        with_o = speedup_from_fractions(0.9, 6, overhead_fraction=0.1)
        without = speedup_from_fractions(0.9, 6)
        assert with_o < without

    def test_program_speedup_bounded_by_cores(self):
        m = model()
        loop = make_loop(parallel=999_000.0, total=1_000_000.0)
        m2 = SpeedupModel(MachineConfig(cores=6), 1_000_000.0)
        assert m2.program_speedup([loop], 6) <= 6.0

    def test_signal_counts(self):
        m = model()
        loop = make_loop(counted=False, segments=2, iterations=100, invocations=5)
        # C-Sig 100 + D-Sig 200 + start/stop (6-1)*2*5.
        assert m.signals(loop, 6) == 100 + 200 + 50

    def test_counted_loops_skip_control_signals(self):
        m = model()
        loop = make_loop(counted=True, segments=2, iterations=100, invocations=5)
        assert m.signals(loop, 6) == 200 + 50


class TestEffectiveSignalCost:
    def test_fixed_cost_respected(self):
        m = model(signal_cost=110.0)
        assert m.effective_signal_cost(make_loop(), 6) == 110.0
        m0 = model(signal_cost=0.0)
        assert m0.effective_signal_cost(make_loop(), 6) == 0.0

    def test_slack_gives_prefetched_latency(self):
        # 1000 cycles/iteration on 6 cores, tiny segment: plenty of slack.
        loop = make_loop(
            total=1_000_000.0, parallel=990_000.0, segment=5_000.0,
            prologue=5_000.0, iterations=1000,
        )
        m = model()
        assert m.effective_signal_cost(loop, 6) == 4.0

    def test_tight_loop_pays_pull_latency(self):
        loop = make_loop(
            total=30_000.0, parallel=25_000.0, segment=4_000.0,
            prologue=1_000.0, iterations=1000,
        )
        m = model()
        assert m.effective_signal_cost(loop, 6) == 110.0

    def test_transfer_consumes_slack(self):
        lush = make_loop(
            total=1_000_000.0, parallel=990_000.0, segment=5_000.0,
            iterations=1000, words=0.0,
        )
        heavy = make_loop(
            total=1_000_000.0, parallel=990_000.0, segment=5_000.0,
            iterations=1000, words=1.0,
        )
        m = model()
        assert m.effective_signal_cost(heavy, 6) >= m.effective_signal_cost(
            lush, 6
        )


class TestRefinedEstimate:
    def test_doall_close_to_ideal_division(self):
        loop = make_loop(
            total=600_000.0, parallel=600_000.0, segment=0.0, prologue=0.0,
            segments=0, iterations=1000,
        )
        m = model()
        estimate = m.refined_parallel_cycles(loop, 6)
        assert estimate == pytest.approx(600_000.0 / 6, rel=0.05)

    def test_chain_bound_loop_does_not_scale(self):
        # Tiny iterations with a segment: serialized by the chain.
        loop = make_loop(
            total=30_000.0, parallel=24_000.0, segment=5_000.0,
            prologue=1_000.0, iterations=1000, segments=1,
        )
        m = model()
        est6 = m.refined_parallel_cycles(loop, 6)
        # At least latency per iteration.
        assert est6 >= 1000 * 110

    def test_saved_cycles_never_negative(self):
        loop = make_loop(
            total=1_000.0, parallel=500.0, segment=400.0, prologue=100.0,
            iterations=10, segments=3, words=2.0,
        )
        m = model()
        assert m.saved_cycles(loop, 6) == 0.0

    def test_saved_cycles_zero_on_one_core(self):
        assert model().saved_cycles(make_loop(), 1) == 0.0

    def test_more_cores_save_more_when_parallel(self):
        loop = make_loop(
            total=600_000.0, parallel=590_000.0, segment=5_000.0,
            prologue=5_000.0, iterations=500,
        )
        m = model()
        assert m.saved_cycles(loop, 6) > m.saved_cycles(loop, 2) > 0

    def test_invocation_overhead_discourages_tiny_invocations(self):
        chunky = make_loop(iterations=1000, invocations=1)
        choppy = make_loop(iterations=1000, invocations=500)
        m = model()
        assert m.refined_parallel_cycles(choppy, 6) > m.refined_parallel_cycles(
            chunky, 6
        )

    def test_underestimated_latency_makes_bad_loops_look_good(self):
        tight = make_loop(
            total=30_000.0, parallel=25_000.0, segment=4_000.0,
            prologue=1_000.0, iterations=1000,
        )
        honest = model(signal_cost=None)
        naive = model(signal_cost=0.0)
        assert naive.saved_cycles(tight, 6) > honest.saved_cycles(tight, 6)
