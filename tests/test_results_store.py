"""ResultsStore round-trips, regression diffing, and the Prometheus
exporter (`repro.obs.results` / `repro.obs.prom`)."""

import copy
import json
from pathlib import Path

import pytest

from repro.obs.prom import (
    parse_exposition,
    prometheus_text,
    sanitize_name,
    status_gauges,
)
from repro.obs.results import (
    ResultsStore,
    RunRecord,
    aggregate,
    compute_run_id,
    diff,
    format_history,
    infer_kind,
    run_metrics,
)


def interp_report(**overrides):
    report = {
        "scale": "train",
        "repeat": 2,
        "programs": [
            {"name": "mcf", "speedup": 10.0, "tree_seconds": 2.0,
             "decoded_speedup": 4.0},
            {"name": "gzip", "speedup": 12.0, "tree_seconds": 1.0,
             "decoded_speedup": 5.0},
            {"name": "equake", "speedup": 8.0, "tree_seconds": 1.5,
             "decoded_speedup": 3.0},
        ],
        "summary": {"geomean_speedup": 9.86, "aggregate_speedup": 10.1,
                    "min_speedup": 8.0},
    }
    report.update(overrides)
    return report


ENV = {"code_version": "deadbeef", "python": "3.x"}


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = store.record("interp", interp_report(), environment=ENV,
                              metrics={"counters": {"x": 1}, "gauges": {}})
        loaded = store.load_runs("interp")
        assert len(loaded) == 1
        got = loaded[0]
        assert got.run_id == record.run_id
        assert got.kind == "interp"
        assert got.code_version == "deadbeef"
        assert got.metrics == {"counters": {"x": 1}, "gauges": {}}
        assert got.report == record.report
        assert isinstance(got, RunRecord)

    def test_content_addressed_dedup(self, tmp_path):
        store = ResultsStore(tmp_path)
        a = store.record("interp", interp_report(), environment=ENV)
        b = store.record("interp", interp_report(), environment=ENV)
        assert a.run_id == b.run_id
        assert len(store.load_runs()) == 1
        # A different measurement gets a different id.
        c = store.record(
            "interp",
            interp_report(summary={"geomean_speedup": 5.0}),
            environment=ENV,
        )
        assert c.run_id != a.run_id
        assert len(store.load_runs()) == 2

    def test_run_id_ignores_clock(self):
        a = compute_run_id("interp", interp_report(), "v", ENV)
        b = compute_run_id("interp", interp_report(), "v", ENV)
        assert a == b

    def test_report_object_with_as_dict(self, tmp_path):
        class FakeReport:
            def as_dict(self):
                return interp_report()

        record = ResultsStore(tmp_path).record(
            "interp", FakeReport(), environment=ENV
        )
        assert record.report["programs"][0]["name"] == "mcf"

    def test_corrupt_payload_fallback(self, tmp_path):
        store = ResultsStore(tmp_path)
        keep = store.record("interp", interp_report(), environment=ENV)
        (tmp_path / "interp" / "mangled.json").write_text("{oops")
        (tmp_path / "interp" / "empty.json").write_text("{}")
        runs = store.load_runs("interp")
        assert [r.run_id for r in runs] == [keep.run_id]
        assert len(store.problems) == 2

    def test_load_by_prefix_and_latest(self, tmp_path):
        store = ResultsStore(tmp_path)
        first = store.record("interp", interp_report(), environment=ENV,
                             created=100.0)
        second = store.record(
            "interp", interp_report(repeat=9), environment=ENV, created=200.0
        )
        assert store.load(first.run_id[:8]).run_id == first.run_id
        assert store.load("latest").run_id == second.run_id
        assert store.load("latest~1").run_id == first.run_id
        assert store.latest("interp").run_id == second.run_id
        with pytest.raises(KeyError):
            store.load("zzzz-no-such-run")
        with pytest.raises(KeyError):
            store.load("latest~7")

    def test_history_and_aggregate(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.record("interp", interp_report(), environment=ENV,
                     created=100.0)
        store.record(
            "interp",
            interp_report(summary={"geomean_speedup": 12.0}),
            environment=ENV,
            created=200.0,
        )
        runs = store.load_runs("interp")
        table = format_history(runs)
        assert "summary.geomean_speedup" in table
        assert runs[0].run_id in table and runs[1].run_id in table
        stats = aggregate(runs)
        entry = stats["summary.geomean_speedup"]
        assert entry["count"] == 2
        assert entry["latest"] == 12.0
        assert entry["min"] == pytest.approx(9.86)
        assert format_history([]) == "(no recorded runs)"


class TestKindsAndMetrics:
    def test_infer_kind(self):
        assert infer_kind(interp_report()) == "interp"
        assert infer_kind(
            {"programs": [{"name": "x", "speedup": 1.0,
                           "batched_speedup": 1.1}]}
        ) == "sched"
        assert infer_kind(
            {"programs": [{"name": "x", "uncached_seconds": 1.0}]}
        ) == "passes"
        assert infer_kind(
            {"geomeans": {"6": 2.0}, "speedups": {"mcf": {"6": 2.1}}}
        ) == "suite"
        with pytest.raises(ValueError):
            infer_kind({"mystery": 1})

    def test_run_metrics_keeps_ratios_drops_timings(self):
        metrics = run_metrics(interp_report())
        assert metrics["programs.mcf.speedup"] == 10.0
        assert metrics["summary.geomean_speedup"] == 9.86
        assert not any("seconds" in path for path in metrics)
        assert "repeat" not in metrics

    def test_run_metrics_suite_shape(self):
        metrics = run_metrics(
            {
                "geomeans": {"2": 1.5, "6": 2.4},
                "speedups": {"mcf": {"2": 1.4, "6": 2.2}},
                "wall_seconds": 9.0,
            }
        )
        assert metrics["geomeans.6"] == 2.4
        assert metrics["speedups.mcf.2"] == 1.4
        assert "wall_seconds" not in metrics


class TestDiff:
    def test_identical_runs_diff_clean(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = store.record("interp", interp_report(), environment=ENV)
        result = diff(record, record)
        assert result.ok
        assert result.entries
        assert all(e.status == "ok" for e in result.entries)
        assert "0 regression(s)" in result.render()

    def test_injected_regression_detected(self):
        base = interp_report()
        head = copy.deepcopy(base)
        for program in head["programs"]:
            program["speedup"] *= 0.85  # -15%: above any sane tolerance
        head["summary"]["geomean_speedup"] *= 0.85
        result = diff(base, head, kind="interp")
        assert not result.ok
        regressed = {e.metric for e in result.regressions}
        assert "summary.geomean_speedup" in regressed
        assert "programs.mcf.speedup" in regressed

    def test_improvement_is_not_a_regression(self):
        base = interp_report()
        head = copy.deepcopy(base)
        head["summary"]["geomean_speedup"] *= 1.5
        result = diff(base, head, kind="interp")
        assert result.ok
        assert any(e.status == "improved" for e in result.entries)

    def test_tolerance_patterns_most_specific_wins(self):
        base = interp_report()
        head = copy.deepcopy(base)
        head["summary"]["geomean_speedup"] *= 0.85
        head["programs"][0]["speedup"] *= 0.85
        result = diff(
            base, head, kind="interp",
            tolerances={"summary.*": 0.5, "programs.mcf.*": 0.5},
        )
        assert result.ok
        # Everything else still gated at the 5% default.
        strict = diff(base, head, kind="interp",
                      tolerances={"summary.*": 0.5})
        assert {e.metric for e in strict.regressions} == {
            "programs.mcf.speedup"
        }

    def test_subset_run_diffs_against_full_baseline(self):
        full = interp_report()
        quick = {
            "scale": "train",
            "repeat": 2,
            "programs": [p for p in copy.deepcopy(full["programs"])
                         if p["name"] != "equake"],
            # Whole-set aggregate over a different program set: higher
            # than the full suite's, and rightly incomparable.
            "summary": {"geomean_speedup": 10.95},
        }
        result = diff(full, quick, kind="interp")
        assert result.ok, result.render()
        assert not any(
            e.metric.startswith("summary.") for e in result.entries
        )
        shared = [e for e in result.entries if "(shared)" in e.metric]
        assert shared, "expected recomputed shared-set geomeans"
        # Shared-set geomean of (10, 12) on both sides.
        entry = next(e for e in shared if e.metric.startswith(
            "geomean.speedup"))
        assert entry.base == pytest.approx((10.0 * 12.0) ** 0.5)
        assert entry.change == pytest.approx(0.0)

    def test_subset_regression_still_detected(self):
        full = interp_report()
        quick = {
            "programs": [
                {"name": "mcf", "speedup": 8.0, "tree_seconds": 1.0},
                {"name": "gzip", "speedup": 9.0, "tree_seconds": 1.0},
            ],
        }
        result = diff(full, quick, kind="interp")
        assert not result.ok

    def test_cross_kind_rejected(self):
        with pytest.raises(ValueError):
            diff(interp_report(), {"geomeans": {"6": 1.0},
                                   "speedups": {"m": {"6": 1.0}}})

    def test_serialized_record_operand(self, tmp_path):
        store = ResultsStore(tmp_path)
        record = store.record("interp", interp_report(), environment=ENV)
        path = tmp_path / "interp" / f"{record.run_id}.json"
        payload = json.loads(path.read_text())
        result = diff(payload, record)
        assert result.ok
        assert result.base_id == record.run_id

    def test_as_dict_shape(self):
        result = diff(interp_report(), interp_report(), kind="interp")
        data = result.as_dict()
        assert data["ok"] is True
        assert data["kind"] == "interp"
        assert all("metric" in e and "change" in e for e in data["entries"])


class TestBenchDiffCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def seed(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        base = store.record("interp", interp_report(), environment=ENV,
                            created=100.0)
        bad = copy.deepcopy(interp_report())
        for program in bad["programs"]:
            program["speedup"] *= 0.85
        bad["summary"]["geomean_speedup"] *= 0.85
        head = store.record("interp", bad, environment=ENV, created=200.0)
        return store, base, head

    def test_identical_clean_and_regression_nonzero(self, tmp_path, capsys):
        _, base, head = self.seed(tmp_path)
        results = str(tmp_path / "results")
        assert self.run_cli(
            ["bench-diff", base.run_id, base.run_id,
             "--results-dir", results]
        ) == 0
        assert self.run_cli(
            ["bench-diff", base.run_id, head.run_id,
             "--results-dir", results]
        ) == 1
        out = capsys.readouterr()
        assert "regression" in out.out

    def test_latest_refs_and_tolerance(self, tmp_path):
        self.seed(tmp_path)
        results = str(tmp_path / "results")
        assert self.run_cli(
            ["bench-diff", "latest~1", "latest", "--results-dir", results]
        ) == 1
        assert self.run_cli(
            ["bench-diff", "latest~1", "latest", "--results-dir", results,
             "--tolerance", "summary.*=0.5",
             "--tolerance", "programs.*=0.5"]
        ) == 0
        assert self.run_cli(
            ["bench-diff", "latest~1", "latest", "--results-dir", results,
             "--default-tolerance", "0.5"]
        ) == 0

    def test_file_operands(self, tmp_path):
        base_path = tmp_path / "base.json"
        head_path = tmp_path / "head.json"
        base_path.write_text(json.dumps(interp_report()))
        bad = copy.deepcopy(interp_report())
        bad["summary"]["geomean_speedup"] *= 0.8
        head_path.write_text(json.dumps(bad))
        results = str(tmp_path / "results")
        assert self.run_cli(
            ["bench-diff", str(base_path), str(base_path),
             "--results-dir", results]
        ) == 0
        assert self.run_cli(
            ["bench-diff", str(base_path), str(head_path),
             "--results-dir", results]
        ) == 1

    def test_usage_errors(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        assert self.run_cli(["bench-diff", "--results-dir", results]) == 2
        assert self.run_cli(
            ["bench-diff", "nope", "nada", "--results-dir", results]
        ) == 2
        assert self.run_cli(
            ["bench-diff", "a", "b", "--results-dir", results,
             "--tolerance", "broken"]
        ) == 2
        capsys.readouterr()

    def test_list_history(self, tmp_path, capsys):
        _, base, head = self.seed(tmp_path)
        assert self.run_cli(
            ["bench-diff", "--list",
             "--results-dir", str(tmp_path / "results")]
        ) == 0
        out = capsys.readouterr().out
        assert base.run_id in out and head.run_id in out


class TestBenchRecording:
    def test_bench_sched_records_run(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        out = tmp_path / "BENCH_sched.json"
        rc = main(
            ["bench-sched", "--benches", "gzip", "--repeat", "1",
             "--out", str(out), "--results-dir", str(results)]
        )
        assert rc == 0
        capsys.readouterr()
        store = ResultsStore(results)
        runs = store.load_runs("sched")
        assert len(runs) == 1
        assert runs[0].report == json.loads(out.read_text())
        assert runs[0].environment.get("cpu_count")
        # An identical re-run diffs clean against itself via the CLI.
        assert main(
            ["bench-diff", "latest", "latest",
             "--results-dir", str(results)]
        ) == 0
        capsys.readouterr()

    def test_empty_results_dir_disables_recording(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        rc = main(
            ["bench-sched", "--benches", "gzip", "--repeat", "1",
             "--out", "", "--results-dir", ""]
        )
        assert rc == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro-results").exists()


class TestProm:
    def test_sanitize(self):
        assert sanitize_name("stage.lower.computes") == (
            "repro_stage_lower_computes"
        )
        assert sanitize_name("9lives", prefix="") == "_9lives"

    def test_exposition_round_trip(self):
        text = prometheus_text(
            {"counters": {"a.b": 3}, "gauges": {"g": 1.5}},
            extra_gauges={"serve.queue.done": 4},
        )
        assert text.endswith("\n")
        parsed = parse_exposition(text)
        assert parsed["repro_a_b"] == ("counter", 3.0)
        assert parsed["repro_g"] == ("gauge", 1.5)
        assert parsed["repro_serve_queue_done"] == ("gauge", 4.0)

    def test_status_gauges(self):
        gauges = status_gauges(
            {
                "uptime_seconds": 12.5,
                "queue": {"queued": 1, "running": 2, "done": 3},
                "in_flight": [{"job": "j1"}, {"job": "j2"}],
                "retries": 1,
                "workers": {"configured": 4, "alive": 3},
                "accepting": True,
            }
        )
        assert gauges["serve.uptime_seconds"] == 12.5
        assert gauges["serve.queue.running"] == 2
        assert gauges["serve.in_flight"] == 2
        assert gauges["serve.workers.alive"] == 3
        assert gauges["serve.accepting"] == 1
