"""Tests for generic transforms: inlining, normalization, DCE."""

import pytest

from repro.analysis.cfg import CFGView
from repro.analysis.loops import find_loops
from repro.frontend import compile_source
from repro.ir import Opcode, verify_module
from repro.runtime import run_module
from repro.transform import (
    InlineError,
    can_inline,
    eliminate_dead_code,
    inline_call,
    normalize_loop,
)


def first_call(func):
    return next(i for i in func.instructions() if i.opcode is Opcode.CALL)


class TestInlining:
    SOURCE = """
    int g;
    int twice(int x) { return x * 2; }
    void main() {
        int a = 5;
        g = twice(a) + 1;
        print(g);
    }
    """

    def test_semantics_preserved(self):
        module = compile_source(self.SOURCE)
        before = run_module(module).output
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        verify_module(module)
        after = run_module(module).output
        assert before == after == ["11"]

    def test_no_calls_remain(self):
        module = compile_source(self.SOURCE)
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        assert not any(
            i.opcode is Opcode.CALL for i in func.instructions()
        )

    def test_inline_with_control_flow(self):
        source = """
        int absval(int x) {
            if (x < 0) { return -x; }
            return x;
        }
        void main() { print(absval(-7) + absval(3)); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        inline_call(module, func, first_call(func))
        verify_module(module)
        assert run_module(module).output == ["10"]

    def test_inline_inside_loop(self):
        source = """
        int g;
        int step(int x) { return x + 3; }
        void main() {
            int s = 0;
            int i;
            for (i = 0; i < 4; i++) { s = step(s); }
            g = s;
            print(s);
        }
        """
        module = compile_source(source)
        before = run_module(module).output
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        verify_module(module)
        assert run_module(module).output == before
        # The loop now contains the callee's body.
        forest = find_loops(func)
        assert len(forest) == 1

    def test_callee_locals_renamed(self):
        source = """
        int f() {
            int buf[4];
            buf[0] = 9;
            return buf[0];
        }
        void main() { print(f()); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        verify_module(module)
        assert run_module(module).output == ["9"]
        assert any("buf" in name for name in func.locals)

    def test_can_inline_rejects_recursion(self):
        source = """
        int rec(int n) { if (n > 0) { return rec(n - 1); } return 0; }
        void main() { print(rec(2)); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        assert not can_inline(module, first_call(func))

    def test_can_inline_rejects_oversized(self):
        module = compile_source(self.SOURCE)
        func = module.functions["main"]
        assert not can_inline(module, first_call(func), max_callee_instructions=1)

    def test_void_callee(self):
        source = """
        int g;
        void bump() { g = g + 1; }
        void main() { bump(); bump(); print(g); }
        """
        module = compile_source(source)
        func = module.functions["main"]
        inline_call(module, func, first_call(func))
        verify_module(module)
        assert run_module(module).output == ["2"]


class TestNormalization:
    def get_loop(self, source):
        module = compile_source(source)
        func = module.functions["main"]
        loop = next(iter(find_loops(func)))
        return module, func, loop

    def test_for_loop_regions(self):
        module, func, loop = self.get_loop(
            "void main() { int i; for (i = 0; i < 4; i++) { print(i); } }"
        )
        norm = normalize_loop(func, loop)
        verify_module(module)
        assert norm.header == loop.header
        assert norm.header in norm.prologue_blocks
        assert norm.latch in norm.body_blocks
        assert norm.prologue_blocks.isdisjoint(norm.body_blocks)
        assert norm.prologue_blocks | norm.body_blocks == norm.blocks

    def test_crossing_edges_from_prologue_to_body(self):
        module, func, loop = self.get_loop(
            "void main() { int i; for (i = 0; i < 4; i++) { print(i); } }"
        )
        norm = normalize_loop(func, loop)
        assert norm.crossing_edges
        for src, dst in norm.crossing_edges:
            assert src in norm.prologue_blocks
            assert dst in norm.body_blocks

    def test_break_extends_prologue(self):
        module, func, loop = self.get_loop(
            """
            void main() {
                int i;
                for (i = 0; i < 100; i++) {
                    if (i == 5) { break; }
                    print(i);
                }
            }
            """
        )
        norm = normalize_loop(func, loop)
        # Blocks up to and including the break test can leave the loop,
        # so they belong to the prologue.
        exits = {src for src, _dst in norm.exit_edges}
        assert exits <= norm.prologue_blocks

    def test_multi_latch_unified(self):
        module, func, loop = self.get_loop(
            """
            void main() {
                int i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { i = i + 3; continue; }
                    i = i + 1;
                }
                print(i);
            }
            """
        )
        before = run_module(module).output
        norm = normalize_loop(func, loop)
        verify_module(module)
        assert run_module(module).output == before
        # All back edges now come through one latch.
        forest = find_loops(func)
        new_loop = forest.by_header[norm.header]
        assert len(new_loop.latches) == 1

    def test_preheader_created(self):
        module, func, loop = self.get_loop(
            """
            void main() {
                int i = 0;
                int r = 0;
                if (r == 0) { i = 1; }
                while (i < 5) { i = i + 2; }
                print(i);
            }
            """
        )
        before = run_module(module).output
        norm = normalize_loop(func, loop)
        verify_module(module)
        cfg = CFGView(func)
        outside_preds = [
            p for p in cfg.preds[norm.header] if p not in norm.blocks
        ]
        assert outside_preds == [norm.preheader]
        assert run_module(module).output == before

    def test_semantics_preserved(self):
        source = """
        int acc;
        void main() {
            int i;
            for (i = 0; i < 10; i++) {
                if (i == 7) { break; }
                acc = acc + i;
            }
            print(acc);
        }
        """
        module, func, loop = self.get_loop(source)
        before = run_module(module).output
        normalize_loop(func, loop)
        verify_module(module)
        assert run_module(module).output == before


class TestDCE:
    def test_removes_unused_pure_code(self):
        module = compile_source(
            """
            void main() {
                int unused = 3 * 7;
                int used = 2;
                print(used);
            }
            """
        )
        func = module.functions["main"]
        removed = eliminate_dead_code(func)
        assert removed >= 2  # the mul and the mov into `unused`
        verify_module(module)
        assert run_module(module).output == ["2"]

    def test_keeps_side_effects(self):
        module = compile_source(
            """
            int g;
            void main() {
                g = 5;
                print(1);
            }
            """
        )
        func = module.functions["main"]
        eliminate_dead_code(func)
        assert any(i.opcode is Opcode.STOREG for i in func.instructions())

    def test_keeps_call_with_unused_result(self):
        module = compile_source(
            """
            int g;
            int f() { g = g + 1; return g; }
            void main() { f(); print(g); }
            """
        )
        func = module.functions["main"]
        eliminate_dead_code(func)
        assert run_module(module).output == ["1"]

    def test_iterative_chains(self):
        module = compile_source(
            """
            void main() {
                int a = 1;
                int b = a + 1;
                int c = b + 1;
                print(0);
            }
            """
        )
        func = module.functions["main"]
        removed = eliminate_dead_code(func)
        assert removed >= 3
