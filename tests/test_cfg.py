"""Tests for CFG views and traversals."""

from repro.analysis.cfg import (
    CFGView,
    postorder,
    reachable_blocks,
    reachable_within,
    reverse_postorder,
)

from tests.helpers import build_cfg

DIAMOND = {"A": ["B", "C"], "B": ["D"], "C": ["D"], "D": []}
LOOP = {"A": ["H"], "H": ["B", "X"], "B": ["H"], "X": []}


class TestCFGView:
    def test_successors_and_predecessors(self):
        cfg = CFGView(build_cfg(DIAMOND))
        assert cfg.successors("A") == ("B", "C")
        assert sorted(cfg.predecessors("D")) == ["B", "C"]
        assert cfg.predecessors("A") == []

    def test_exits(self):
        cfg = CFGView(build_cfg(DIAMOND))
        assert cfg.exits == ("D",)

    def test_entry(self):
        cfg = CFGView(build_cfg(DIAMOND))
        assert cfg.entry == "A"

    def test_contains(self):
        cfg = CFGView(build_cfg(DIAMOND))
        assert "B" in cfg and "Z" not in cfg


class TestOrders:
    def test_postorder_ends_at_entry(self):
        cfg = CFGView(build_cfg(DIAMOND))
        order = postorder(cfg)
        assert order[-1] == "A"
        assert set(order) == {"A", "B", "C", "D"}

    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFGView(build_cfg(DIAMOND))
        order = reverse_postorder(cfg)
        assert order[0] == "A"
        # A topological-ish property: D after both B and C.
        assert order.index("D") > order.index("B")
        assert order.index("D") > order.index("C")

    def test_postorder_handles_loops(self):
        cfg = CFGView(build_cfg(LOOP))
        order = postorder(cfg)
        assert set(order) == {"A", "H", "B", "X"}


class TestReachability:
    def test_reachable_blocks(self):
        graph = dict(DIAMOND)
        graph["Z"] = []  # unreachable island
        cfg = CFGView(build_cfg(graph))
        assert reachable_blocks(cfg) == {"A", "B", "C", "D"}

    def test_reachable_within_blocks_back_edge(self):
        cfg = CFGView(build_cfg(LOOP))
        allowed = frozenset({"H", "B"})
        # Which loop blocks can reach B without the back edge B->H?
        region = reachable_within(cfg, ["B"], allowed, {("B", "H")})
        assert region == {"H", "B"}
        # And with target H itself, B cannot reach it (edge blocked).
        region = reachable_within(cfg, ["H"], allowed, {("B", "H")})
        assert region == {"H"}

    def test_reachable_within_respects_allowed(self):
        cfg = CFGView(build_cfg(DIAMOND))
        region = reachable_within(cfg, ["D"], frozenset({"B", "D"}))
        assert region == {"B", "D"}
