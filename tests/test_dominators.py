"""Tests for dominator and post-dominator computation."""

from repro.analysis.cfg import CFGView
from repro.analysis.dominators import (
    VIRTUAL_EXIT,
    dominators,
    post_dominators,
)

from tests.helpers import build_cfg

DIAMOND = {"A": ["B", "C"], "B": ["D"], "C": ["D"], "D": []}


class TestDominators:
    def test_entry_dominates_everything(self):
        dom = dominators(CFGView(build_cfg(DIAMOND)))
        for node in "ABCD":
            assert dom.dominates("A", node)

    def test_branch_arms_do_not_dominate_merge(self):
        dom = dominators(CFGView(build_cfg(DIAMOND)))
        assert not dom.dominates("B", "D")
        assert not dom.dominates("C", "D")

    def test_reflexive(self):
        dom = dominators(CFGView(build_cfg(DIAMOND)))
        assert dom.dominates("B", "B")
        assert not dom.strictly_dominates("B", "B")

    def test_idom_chain(self):
        graph = {"A": ["B"], "B": ["C", "E"], "C": ["D"], "D": ["E"], "E": []}
        dom = dominators(CFGView(build_cfg(graph)))
        assert dom.idom["E"] == "B"
        assert dom.idom["D"] == "C"
        assert dom.idom["B"] == "A"

    def test_loop_header_dominates_body(self):
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["C"], "C": ["H"], "X": []}
        dom = dominators(CFGView(build_cfg(graph)))
        assert dom.dominates("H", "B")
        assert dom.dominates("H", "C")
        assert not dom.dominates("B", "H")

    def test_children_map(self):
        dom = dominators(CFGView(build_cfg(DIAMOND)))
        children = dom.children()
        assert sorted(children["A"]) == ["B", "C", "D"]

    def test_unreachable_blocks_absent(self):
        graph = dict(DIAMOND)
        graph["Z"] = ["A"]  # Z has an edge but is unreachable from A.
        func = build_cfg(graph)
        dom = dominators(CFGView(func))
        assert "Z" not in dom


class TestPostDominators:
    def test_exit_postdominates_all(self):
        pdom = post_dominators(CFGView(build_cfg(DIAMOND)))
        for node in "ABCD":
            assert pdom.dominates("D", node)

    def test_merge_point_postdominates_branch(self):
        graph = {"A": ["B", "C"], "B": ["M"], "C": ["M"], "M": ["E"], "E": []}
        pdom = post_dominators(CFGView(build_cfg(graph)))
        assert pdom.dominates("M", "A")
        assert not pdom.dominates("B", "A")

    def test_virtual_exit_is_root(self):
        graph = {"A": ["B", "C"], "B": [], "C": []}  # two exits
        pdom = post_dominators(CFGView(build_cfg(graph)))
        assert pdom.root == VIRTUAL_EXIT
        assert pdom.dominates(VIRTUAL_EXIT, "A")
        assert not pdom.dominates("B", "A")
        assert not pdom.dominates("C", "A")

    def test_loop_latch_postdominates_body(self):
        # A -> H; H -> B | X; B -> L; L -> H; X is the exit.
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["L"], "L": ["H"], "X": []}
        pdom = post_dominators(CFGView(build_cfg(graph)))
        assert pdom.dominates("L", "B")
        # H can leave via X, so L does not post-dominate H.
        assert not pdom.dominates("L", "H")

    def test_infinite_loop_wired_to_exit(self):
        graph = {"A": ["B"], "B": ["A"]}
        pdom = post_dominators(CFGView(build_cfg(graph)))
        assert "A" in pdom and "B" in pdom
