"""Tests for the Instruction class and opcode classifications."""

from repro.ir import (
    COMMUTATIVE_OPCODES,
    MEMORY_READ_OPCODES,
    MEMORY_WRITE_OPCODES,
    SIDE_EFFECT_OPCODES,
    TERMINATOR_OPCODES,
    Instruction,
    Opcode,
)
from repro.ir.operands import Const, Symbol, VReg
from repro.ir.types import Type


def make_add():
    dest = VReg(0, Type.INT)
    return Instruction(
        Opcode.ADD, dest=dest, args=(VReg(1, Type.INT), Const.int(2))
    )


class TestStructure:
    def test_uids_unique(self):
        a, b = make_add(), make_add()
        assert a.uid != b.uid

    def test_clone_gets_fresh_uid(self):
        a = make_add()
        b = a.clone()
        assert b.uid != a.uid
        assert b.opcode is a.opcode and b.args == a.args

    def test_clone_with_overrides(self):
        a = Instruction(Opcode.BR, targets=("x",))
        b = a.clone(targets=("y",))
        assert b.targets == ("y",)

    def test_identity_equality(self):
        a = make_add()
        assert a == a
        assert a != make_add()

    def test_hash_is_uid(self):
        a = make_add()
        assert hash(a) == a.uid

    def test_uses_returns_only_registers(self):
        instr = make_add()
        uses = instr.uses()
        assert len(uses) == 1 and uses[0].uid == 1

    def test_symbol_operand(self):
        sym = Symbol("g", Type.INT, 4)
        load = Instruction(
            Opcode.LOADG, dest=VReg(0, Type.INT), args=(sym, Const.int(0))
        )
        assert load.symbol_operand() == sym
        assert make_add().symbol_operand() is None


class TestClassification:
    def test_terminators(self):
        assert TERMINATOR_OPCODES == {Opcode.BR, Opcode.CBR, Opcode.RET}
        assert Instruction(Opcode.BR, targets=("a",)).is_terminator
        assert not make_add().is_terminator

    def test_memory_classification(self):
        assert Opcode.LOADG in MEMORY_READ_OPCODES
        assert Opcode.LOADP in MEMORY_READ_OPCODES
        assert Opcode.STOREG in MEMORY_WRITE_OPCODES
        assert Opcode.STOREP in MEMORY_WRITE_OPCODES
        assert Opcode.ADD not in MEMORY_READ_OPCODES

    def test_side_effects_include_sync_ops(self):
        for opcode in (Opcode.WAIT, Opcode.SIGNAL, Opcode.NEXT_ITER, Opcode.XFER):
            assert opcode in SIDE_EFFECT_OPCODES

    def test_pure_arithmetic_has_no_side_effects(self):
        assert not make_add().has_side_effects

    def test_helix_ops(self):
        wait = Instruction(Opcode.WAIT, dep_id=0)
        assert wait.is_helix_op
        assert not make_add().is_helix_op

    def test_commutativity_set(self):
        assert Opcode.ADD in COMMUTATIVE_OPCODES
        assert Opcode.SUB not in COMMUTATIVE_OPCODES
        assert Opcode.DIV not in COMMUTATIVE_OPCODES
