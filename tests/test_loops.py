"""Tests for natural loop detection and the nesting forest."""

from repro.analysis.cfg import CFGView
from repro.analysis.loops import find_loops
from repro.frontend import compile_source

from tests.helpers import build_cfg


class TestDetection:
    def test_simple_loop(self):
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["H"], "X": []}
        forest = find_loops(build_cfg(graph))
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.header == "H"
        assert loop.blocks == {"H", "B"}
        assert loop.latches == {"B"}

    def test_no_loops(self):
        graph = {"A": ["B", "C"], "B": ["D"], "C": ["D"], "D": []}
        forest = find_loops(build_cfg(graph))
        assert len(forest) == 0

    def test_multi_block_body(self):
        graph = {
            "A": ["H"],
            "H": ["B1", "X"],
            "B1": ["B2", "B3"],
            "B2": ["L"],
            "B3": ["L"],
            "L": ["H"],
            "X": [],
        }
        forest = find_loops(build_cfg(graph))
        loop = forest.loops[0]
        assert loop.blocks == {"H", "B1", "B2", "B3", "L"}

    def test_multiple_latches_merged_into_one_loop(self):
        graph = {
            "A": ["H"],
            "H": ["B", "X"],
            "B": ["H", "C"],
            "C": ["H"],
            "X": [],
        }
        forest = find_loops(build_cfg(graph))
        assert len(forest) == 1
        assert forest.loops[0].latches == {"B", "C"}

    def test_exit_edges(self):
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["H", "Y"], "X": [], "Y": []}
        func = build_cfg(graph)
        forest = find_loops(func)
        loop = forest.loops[0]
        cfg = CFGView(func)
        assert set(loop.exit_edges(cfg)) == {("H", "X"), ("B", "Y")}
        assert loop.exit_blocks(cfg) == ["B", "H"]


class TestNesting:
    def test_nested_loops(self):
        graph = {
            "A": ["H1"],
            "H1": ["H2", "X"],
            "H2": ["B", "L1"],
            "B": ["H2"],
            "L1": ["H1"],
            "X": [],
        }
        forest = find_loops(build_cfg(graph))
        assert len(forest) == 2
        outer = forest.by_header["H1"]
        inner = forest.by_header["H2"]
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1 and inner.depth == 2

    def test_innermost_lookup(self):
        graph = {
            "A": ["H1"],
            "H1": ["H2", "X"],
            "H2": ["B", "L1"],
            "B": ["H2"],
            "L1": ["H1"],
            "X": [],
        }
        forest = find_loops(build_cfg(graph))
        assert forest.loop_of("B").header == "H2"
        assert forest.loop_of("L1").header == "H1"
        assert forest.loop_of("X") is None

    def test_sibling_loops(self):
        graph = {
            "A": ["H1"],
            "H1": ["B1", "M"],
            "B1": ["H1"],
            "M": ["H2"],
            "H2": ["B2", "X"],
            "B2": ["H2"],
            "X": [],
        }
        forest = find_loops(build_cfg(graph))
        assert len(forest.top_level) == 2

    def test_loop_id_is_program_wide(self):
        graph = {"A": ["H"], "H": ["B", "X"], "B": ["H"], "X": []}
        forest = find_loops(build_cfg(graph))
        assert forest.loops[0].id == ("test", "H")


class TestFromFrontend:
    def test_for_loop_shape(self):
        module = compile_source(
            "void main() { int i; for (i = 0; i < 3; i++) { } }"
        )
        forest = find_loops(module.functions["main"])
        assert len(forest) == 1
        loop = forest.loops[0]
        assert loop.header.startswith("for")

    def test_while_inside_for(self):
        module = compile_source(
            """
            void main() {
                int i;
                for (i = 0; i < 3; i++) {
                    int j = 0;
                    while (j < 2) { j++; }
                }
            }
            """
        )
        forest = find_loops(module.functions["main"])
        assert len(forest) == 2
        inner = [l for l in forest if l.header.startswith("while")][0]
        assert inner.parent is not None

    def test_call_sites_listed(self):
        module = compile_source(
            """
            int f() { return 1; }
            void main() {
                int i; int s = 0;
                for (i = 0; i < 3; i++) { s += f(); }
                print(s);
            }
            """
        )
        forest = find_loops(module.functions["main"])
        loop = forest.loops[0]
        assert len(loop.call_sites()) == 1
