"""Tests for liveness and reaching definitions."""

from repro.analysis.cfg import CFGView
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching import compute_reaching_defs
from repro.frontend import compile_source


def named_uid(func, name):
    """Find the uid of the frontend-named register ``name``."""
    for instr in func.instructions():
        if instr.dest is not None and instr.dest.name == name:
            return instr.dest.uid
        for reg in instr.uses():
            if reg.name == name:
                return reg.uid
    raise AssertionError(f"no register named {name}")


class TestLiveness:
    def test_loop_carried_value_live_at_header(self):
        module = compile_source(
            """
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 4; i++) { s = s + i; }
                print(s);
            }
            """
        )
        func = module.functions["main"]
        live = compute_liveness(func)
        s_uid = named_uid(func, "s")
        header = next(n for n in func.blocks if n.startswith("for"))
        assert s_uid in live.live_at_entry(header)

    def test_dead_after_last_use(self):
        module = compile_source(
            """
            void main() {
                int a = 1;
                print(a);
                int b = 2;
                print(b);
            }
            """
        )
        func = module.functions["main"]
        live = compute_liveness(func)
        entry = func.entry.name
        # Nothing is live at function exit.
        assert live.live_at_exit(entry) == frozenset()

    def test_branch_arm_uses_propagate(self):
        module = compile_source(
            """
            void main() {
                int x = 5;
                int flag = 1;
                if (flag) { print(x); } else { print(0); }
            }
            """
        )
        func = module.functions["main"]
        live = compute_liveness(func)
        x_uid = named_uid(func, "x")
        then_block = next(n for n in func.blocks if n.startswith("then"))
        assert x_uid in live.live_at_entry(then_block)

    def test_params_recorded(self):
        module = compile_source(
            "int f(int a) { return a; } void main() { print(f(1)); }"
        )
        func = module.functions["f"]
        live = compute_liveness(func)
        assert func.params[0].uid in live.regs


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        module = compile_source(
            """
            void main() {
                int x = 1;
                print(x);
            }
            """
        )
        func = module.functions["main"]
        reach = compute_reaching_defs(func)
        x_uid = named_uid(func, "x")
        entry = func.entry.name
        instrs = func.blocks[entry].instructions
        print_idx = next(
            i for i, instr in enumerate(instrs) if instr.opcode.value == "print"
        )
        defs = reach.defs_reaching_use(entry, print_idx, x_uid)
        assert len(defs) == 1

    def test_branch_defs_both_reach_merge(self):
        module = compile_source(
            """
            void main() {
                int x = 0;
                int c = 1;
                if (c) { x = 1; } else { x = 2; }
                print(x);
            }
            """
        )
        func = module.functions["main"]
        reach = compute_reaching_defs(func)
        x_uid = named_uid(func, "x")
        merge = next(n for n in func.blocks if n.startswith("endif"))
        defs = reach.reach_in[merge]
        x_defs = [d for d in defs if d[2] == x_uid]
        assert len(x_defs) == 2

    def test_redefinition_kills(self):
        module = compile_source(
            """
            void main() {
                int x = 1;
                x = 2;
                print(x);
            }
            """
        )
        func = module.functions["main"]
        reach = compute_reaching_defs(func)
        x_uid = named_uid(func, "x")
        entry = func.entry.name
        instrs = func.blocks[entry].instructions
        print_idx = next(
            i for i, instr in enumerate(instrs) if instr.opcode.value == "print"
        )
        defs = reach.defs_reaching_use(entry, print_idx, x_uid)
        assert len(defs) == 1
        # The surviving def is the later one.
        _block, index, _uid = defs[0]
        assert instrs[index].args[0].value == 2

    def test_loop_def_reaches_header(self):
        module = compile_source(
            """
            void main() {
                int s = 0;
                int i;
                for (i = 0; i < 3; i++) { s = s + 1; }
                print(s);
            }
            """
        )
        func = module.functions["main"]
        reach = compute_reaching_defs(func)
        s_uid = named_uid(func, "s")
        header = next(n for n in func.blocks if n.startswith("for"))
        s_defs = [d for d in reach.reach_in[header] if d[2] == s_uid]
        # Both the init and the in-loop def reach the header.
        assert len(s_defs) == 2
