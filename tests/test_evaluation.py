"""Tests for the evaluation harness (reporting, runner caching, drivers).

Figure drivers are exercised on a single benchmark to keep the suite
fast; ``benchmarks/`` runs the real thing over all thirteen.
"""

import pytest

from repro.evaluation.reporting import format_series, format_table, geomean
from repro.evaluation.runner import EvaluationRunner
from repro.evaluation import figures
from repro.runtime.machine import MachineConfig


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        assert geomean([]) == 0.0

    def test_geomean_skips_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in lines[-1]
        assert "1.50" in text

    def test_format_table_none_cells(self):
        text = format_table(["x"], [[None]])
        assert "-" in text

    def test_format_series(self):
        text = format_series("s", {"a": 1.0, "b": 2.5})
        assert text == "s: a=1.00 b=2.50"


@pytest.fixture(scope="module")
def mini_runner():
    """A runner restricted to one benchmark (mcf: fast, has both a chosen
    loop and rejected serial loops)."""
    runner = EvaluationRunner(MachineConfig(cores=6))
    runner.benches = lambda: ["mcf"]
    return runner


class TestRunnerCaching:
    def test_modules_cached(self, mini_runner):
        a = mini_runner.module("mcf", "ref")
        b = mini_runner.module("mcf", "ref")
        assert a is b

    def test_pipeline_cached_by_key(self, mini_runner):
        a = mini_runner.helix_run("mcf")
        b = mini_runner.helix_run("mcf")
        assert a is b

    def test_sequential_cached(self, mini_runner):
        a = mini_runner.sequential("mcf")
        assert a is mini_runner.sequential("mcf")

    def test_pipeline_correct(self, mini_runner):
        run = mini_runner.helix_run("mcf")
        assert run.output_matches
        assert run.speedup > 0.9


class TestFigureDrivers:
    def test_figure9(self, mini_runner):
        result = figures.figure9(mini_runner)
        row = result.speedups["mcf"]
        assert set(row) == {2, 4, 6}
        assert all(v > 0.8 for v in row.values())
        assert "Figure 9" in result.render()

    def test_table1(self, mini_runner):
        result = figures.table1(mini_runner)
        row = result.rows[0]
        assert row.bench == "mcf"
        assert row.candidate_loops >= row.parallelized_loops >= 1
        assert 0 <= row.carried_dep_pct <= 100
        assert "Table 1" in result.render()

    def test_prefetching_study(self, mini_runner):
        result = figures.prefetching_study(mini_runner)
        row = result.speedups["mcf"]
        assert row["ideal"] >= row["helix"] >= row["none"] - 1e-9
        assert "3.3" in result.render()

    def test_model_validation(self, mini_runner):
        result = figures.model_validation(mini_runner)
        assert "mcf" in result.predicted
        assert result.error_pct("mcf") < 50
        assert "3.4" in result.render()

    def test_figure11(self, mini_runner):
        result = figures.figure11(mini_runner)
        per_level = result.breakdown["mcf"]
        for label in result.levels:
            parts = per_level[label]
            assert len(parts) == 4
            assert sum(parts) == pytest.approx(100.0, abs=1.0)

    def test_figure13(self, mini_runner):
        result = figures.figure13(mini_runner)
        assert set(result.distributions) == {"4 (prefetched)", "110"}
        for per_bench in result.distributions.values():
            for dist in per_bench.values():
                if dist:
                    assert sum(dist.values()) == pytest.approx(100.0)

    def test_figure12(self, mini_runner):
        result = figures.figure12(mini_runner)
        assert "mcf" in result.underestimated
        assert "mcf" in result.overestimated
        # Overestimating latency must never produce a slowdown.
        assert result.overestimated["mcf"] >= 0.95

    def test_figure10(self, mini_runner):
        result = figures.figure10(mini_runner)
        row = result.speedups["mcf"]
        assert set(row) == set(result.labels)
        # No configuration may crash or corrupt output (asserted inside),
        # and the full pipeline must be at least as good as "neither".
        assert row["helix-nobalance"] >= row["neither"] - 0.1


class TestLatencySweep:
    def test_sweep_monotone(self, mini_runner):
        result = figures.latency_sweep(
            mini_runner, latencies=(4, 110, 220)
        )
        assert set(result.speedups) == {4, 110, 220}
        assert result.geomean(4) >= result.geomean(110) >= result.geomean(220)
        assert "signal latency" in result.render()
