"""End-to-end tests of the public API."""

import pytest

from repro import (
    HelixResult,
    MachineConfig,
    compile_minic,
    parallelize,
    parallelize_and_run,
)
from repro.core.loopinfo import HelixOptions
from repro.runtime.machine import PrefetchMode

PROGRAM = """
int data[128];
int total;
void main() {
    int i;
    for (i = 0; i < 128; i++) {
        int k = 0;
        int f = 0;
        while (k < 25) { f = f + (k ^ i) * 3; k++; }
        data[i] = f;
    }
    for (i = 0; i < 128; i++) { total = (total + data[i]) % 65521; }
    print(total);
}
"""


class TestParallelizeAndRun:
    def test_end_to_end(self):
        module = compile_minic(PROGRAM)
        result = parallelize_and_run(module, MachineConfig(cores=6))
        assert isinstance(result, HelixResult)
        assert result.output_matches
        assert result.speedup > 1.5
        assert result.chosen_loops

    def test_speedup_grows_with_cores(self):
        module = compile_minic(PROGRAM)
        two = parallelize_and_run(module, MachineConfig(cores=2))
        six = parallelize_and_run(module, MachineConfig(cores=6))
        assert six.speedup > two.speedup

    def test_explicit_loop_ids_skip_selection(self):
        module = compile_minic(PROGRAM)
        from repro.analysis.loops import find_loops

        loop = next(
            l for l in find_loops(module.functions["main"]) if l.parent is None
        )
        result = parallelize_and_run(module, loop_ids=[loop.id])
        assert result.selection is None
        assert result.chosen_loops == [loop.id]
        assert result.output_matches

    def test_loop_stats_accessible(self):
        module = compile_minic(PROGRAM)
        result = parallelize_and_run(module)
        stats = result.loop_stats()
        assert stats
        for s in stats.values():
            assert s.iterations > 0

    def test_train_module_used_for_profiling(self):
        ref = compile_minic(PROGRAM)
        train = compile_minic(PROGRAM.replace("128", "32"))
        result = parallelize_and_run(ref, train_module=train)
        assert result.output_matches
        assert result.profile is not None
        assert result.profile.module is not ref


class TestParallelizeOnly:
    def test_no_execution_performed(self):
        module = compile_minic(PROGRAM)
        result = parallelize(module)
        assert result.sequential is None and result.parallel is None
        with pytest.raises(ValueError):
            result.speedup

    def test_options_forwarded(self):
        module = compile_minic(PROGRAM)
        options = HelixOptions(enable_signal_optimization=False)
        result = parallelize(module, options=options)
        for info in result.infos:
            assert info.options.enable_signal_optimization is False

    def test_precomputed_profile_reused(self):
        from repro.runtime.profiler import profile_module

        module = compile_minic(PROGRAM)
        profile = profile_module(module)
        result = parallelize(module, profile=profile)
        assert result.profile is profile


class TestMachineVariants:
    def test_prefetch_mode_affects_timing_not_output(self):
        module = compile_minic(PROGRAM)
        runs = {}
        for mode in (PrefetchMode.NONE, PrefetchMode.IDEAL):
            result = parallelize_and_run(
                module, MachineConfig(cores=6, prefetch_mode=mode)
            )
            assert result.output_matches
            runs[mode] = result.parallel.cycles
        assert runs[PrefetchMode.IDEAL] <= runs[PrefetchMode.NONE]

    def test_smt_disabled_falls_back_to_pull(self):
        module = compile_minic(PROGRAM)
        result = parallelize_and_run(
            module, MachineConfig(cores=4, smt=False)
        )
        assert result.output_matches
