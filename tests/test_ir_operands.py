"""Tests for IR operands: registers, constants, symbols."""

import pytest

from repro.ir.operands import Const, Symbol, VReg, operand_type
from repro.ir.types import Type


class TestVReg:
    def test_str_with_name(self):
        assert str(VReg(3, Type.INT, "count")) == "%count.3"

    def test_str_anonymous(self):
        assert str(VReg(7, Type.FLOAT)) == "%t7"

    def test_equality_is_structural(self):
        assert VReg(1, Type.INT, "a") == VReg(1, Type.INT, "a")
        assert VReg(1, Type.INT) != VReg(2, Type.INT)

    def test_hashable(self):
        regs = {VReg(1, Type.INT), VReg(2, Type.INT), VReg(1, Type.INT)}
        assert len(regs) == 2


class TestConst:
    def test_int_shorthand(self):
        c = Const.int(42)
        assert c.value == 42 and c.type is Type.INT

    def test_float_shorthand_coerces(self):
        c = Const.float(3)
        assert c.value == 3.0 and isinstance(c.value, float)

    def test_int_const_rejects_float_value(self):
        with pytest.raises(TypeError):
            Const(1.5, Type.INT)

    def test_str(self):
        assert str(Const.int(-7)) == "-7"


class TestSymbol:
    def test_global_symbol(self):
        sym = Symbol("data", Type.INT, 64)
        assert sym.is_global
        assert str(sym) == "@data"
        assert sym.size_bytes == 64 * 8

    def test_local_symbol(self):
        sym = Symbol("buf", Type.FLOAT, 16, function="main")
        assert not sym.is_global
        assert str(sym) == "$buf"

    def test_synthetic_flag_not_in_equality(self):
        a = Symbol("s", Type.INT, 1, synthetic=True)
        b = Symbol("s", Type.INT, 1, synthetic=False)
        assert a == b


class TestOperandType:
    def test_reg(self):
        assert operand_type(VReg(0, Type.FLOAT)) is Type.FLOAT

    def test_const(self):
        assert operand_type(Const.int(1)) is Type.INT

    def test_symbol_decays_to_pointer(self):
        assert operand_type(Symbol("g", Type.INT, 4)) is Type.PTR
