"""Tests for the Section 2.2 loop-selection algorithm."""

import pytest

from repro.core.selection import (
    SelectionConfig,
    analyze_candidates,
    choose_loops,
    fixed_level_selection,
)
from repro.frontend import compile_source
from repro.runtime import profile_module
from repro.runtime.machine import MachineConfig


def select(source, cores=6, **config_kwargs):
    module = compile_source(source)
    profile = profile_module(module)
    config = SelectionConfig(
        machine=MachineConfig(cores=cores), cores=cores, **config_kwargs
    )
    return module, profile, choose_loops(module, profile, config)


HEAVY_DOALL = """
int a[64];
int chk;
void main() {
    int i;
    for (i = 0; i < 64; i++) {
        int k = 0;
        int f = 0;
        while (k < 60) { f = f + (k ^ i); k++; }
        a[i] = f;
    }
    for (i = 0; i < 64; i++) { chk = (chk + a[i]) % 1009; }
    print(chk);
}
"""

SERIAL_CHAIN = """
int a[64];
void main() {
    int i;
    for (i = 1; i < 64; i++) {
        a[i] = a[i - 1] * 3 % 97 + 1;
    }
    print(a[63]);
}
"""


class TestBasicChoices:
    def test_profitable_doall_chosen(self):
        module, profile, selection = select(HEAVY_DOALL)
        headers = {lid[1] for lid in selection.chosen}
        # The heavy outer DOALL loop must be among the chosen.
        assert any(h.startswith("for") for h in headers)
        for lid in selection.chosen:
            assert selection.saved_time[lid] > 0

    def test_serial_chain_rejected(self):
        module, profile, selection = select(SERIAL_CHAIN)
        assert selection.chosen == []

    def test_candidates_cover_profiled_loops(self):
        module, profile, selection = select(HEAVY_DOALL)
        assert selection.candidate_count == len(
            profile.dynamic_nesting.nodes()
        )

    def test_single_core_selects_nothing(self):
        module, profile, selection = select(HEAVY_DOALL, cores=1)
        assert selection.chosen == []


class TestMaxTPropagation:
    NESTED = """
    int a[64];
    int acc;
    void main() {
        int r;
        for (r = 0; r < 6; r++) {
            acc = acc * 2 % 1000003;
            int i;
            for (i = 0; i < 48; i++) {
                int k = 0;
                int f = 0;
                while (k < 30) { f = f + (k ^ i); k++; }
                a[i] = f + r;
            }
            int j;
            for (j = 0; j < 48; j++) { acc = acc + a[j]; }
        }
        print(acc);
    }
    """

    def test_descends_past_serialized_outer(self):
        module, profile, selection = select(self.NESTED)
        # The outer r-loop carries `acc` through everything; the inner
        # i-loop is the profitable one.
        chosen_funcs = {(lid[0], lid[1][:3]) for lid in selection.chosen}
        assert selection.chosen
        inner_chosen = [
            lid
            for lid in selection.chosen
            if profile.dynamic_nesting.graph.in_degree(lid) > 0
        ]
        assert inner_chosen, "selection should pick nested loops here"

    def test_maxt_at_least_t(self):
        module, profile, selection = select(self.NESTED)
        for lid, t in selection.saved_time.items():
            assert selection.max_saved_time[lid] >= t - 1e-9

    def test_maxt_propagates_child_sums(self):
        module, profile, selection = select(self.NESTED)
        graph = profile.dynamic_nesting
        for lid in selection.max_saved_time:
            child_sum = sum(
                selection.max_saved_time.get(c, 0.0)
                for c in graph.children(lid)
            )
            assert selection.max_saved_time[lid] >= child_sum - 1e-6

    def test_chosen_loops_not_nested_in_each_other(self):
        module, profile, selection = select(self.NESTED)
        from repro.analysis.loops import find_loops

        forests = {
            name: find_loops(f) for name, f in module.functions.items()
        }
        for a in selection.chosen:
            for b in selection.chosen:
                if a == b or a[0] != b[0]:
                    continue
                loop_a = forests[a[0]].by_header[a[1]]
                loop_b = forests[b[0]].by_header[b[1]]
                assert not loop_a.blocks < loop_b.blocks


class TestSignalCostKnob:
    def test_underestimate_chooses_more(self):
        source = """
        int total;
        void main() {
            int i;
            for (i = 0; i < 200; i++) {
                total = total + i * 3 % 7;
            }
            print(total);
        }
        """
        _, _, honest = select(source)
        _, _, naive = select(source, signal_cost=0.0)
        assert len(naive.chosen) >= len(honest.chosen)

    def test_overestimate_chooses_fewer_or_equal(self):
        _, _, honest = select(HEAVY_DOALL)
        _, _, pessimist = select(HEAVY_DOALL, signal_cost=110.0)
        assert len(pessimist.chosen) <= len(honest.chosen)


class TestFixedLevelSelection:
    def test_levels_partition_reasonably(self):
        module = compile_source(TestMaxTPropagation.NESTED)
        profile = profile_module(module)
        level1 = fixed_level_selection(module, profile, 1)
        level2 = fixed_level_selection(module, profile, 2)
        assert level1
        assert level2
        assert not (set(level1) & set(level2))

    def test_empty_deep_levels(self):
        module = compile_source(HEAVY_DOALL)
        profile = profile_module(module)
        assert fixed_level_selection(module, profile, 7) == []


class TestCandidateCharacterization:
    def test_totals_decompose(self):
        module = compile_source(TestMaxTPropagation.NESTED)
        profile = profile_module(module)
        config = SelectionConfig(machine=MachineConfig(cores=6), cores=6)
        candidates = analyze_candidates(module, profile, config)
        for inputs in candidates.values():
            assert inputs.total_cycles >= 0
            assert inputs.parallel_cycles >= 0
            assert inputs.segment_cycles >= 0
            assert inputs.prologue_cycles >= 0
            assert (
                inputs.parallel_cycles
                <= inputs.total_cycles + 1e-6
            )

    def test_doall_mostly_parallel(self):
        module = compile_source(HEAVY_DOALL)
        profile = profile_module(module)
        config = SelectionConfig(machine=MachineConfig(cores=6), cores=6)
        candidates = analyze_candidates(module, profile, config)
        big = max(candidates.values(), key=lambda c: c.total_cycles)
        assert big.parallel_cycles > 0.8 * big.total_cycles
        assert big.counted

    def test_unoptimized_signals_flag_increases_segments(self):
        source = """
        int a; int b;
        void main() {
            int i;
            for (i = 0; i < 50; i++) {
                int w = i * 3 % 7;
                a = a + w;
                b = b + w;
            }
            print(a + b);
        }
        """
        module = compile_source(source)
        profile = profile_module(module)
        base = SelectionConfig(machine=MachineConfig(cores=6), cores=6)
        raw = SelectionConfig(
            machine=MachineConfig(cores=6), cores=6, unoptimized_signals=True
        )
        optimized = analyze_candidates(module, profile, base)
        unoptimized = analyze_candidates(module, profile, raw)
        lid = next(iter(optimized))
        assert (
            unoptimized[lid].segments_per_iteration
            >= optimized[lid].segments_per_iteration
        )


class TestCoreInsensitivity:
    def test_selection_mostly_insensitive_to_core_count(self):
        """Paper, Section 3.5: 'loop selection is insensitive to the
        number of cores'.  The chosen sets at 4 and 6 cores coincide."""
        from repro.bench import compile_benchmark
        from repro.runtime import profile_module

        for name in ("twolf", "gzip", "mcf"):
            module = compile_benchmark(name, "train")
            profile = profile_module(module)
            sets = {}
            for cores in (4, 6):
                config = SelectionConfig(
                    machine=MachineConfig(cores=cores), cores=cores
                )
                sets[cores] = tuple(
                    choose_loops(module, profile, config).chosen
                )
            assert sets[4] == sets[6], name
