"""Tests for the generic optimization passes (fold/copyprop/simplify)."""

import pytest

from repro.frontend import compile_source
from repro.ir import Opcode, verify_module
from repro.runtime import run_module
from repro.transform.constfold import fold_constants, fold_constants_module
from repro.transform.copyprop import (
    optimize_module,
    propagate_copies,
    simplify_cfg,
)


def check_preserves(source):
    """Optimize and assert output identity; returns (module, baseline)."""
    module = compile_source(source)
    baseline = run_module(module).output
    stats = optimize_module(module)
    verify_module(module)
    assert run_module(module).output == baseline
    return module, stats


class TestConstantFolding:
    def test_folds_literal_arithmetic(self):
        module = compile_source("void main() { print(2 + 3 * 4); }")
        before = run_module(module)
        folded = fold_constants_module(module)
        assert folded > 0
        assert run_module(module).output == before.output
        # All arithmetic should be gone.
        main = module.functions["main"]
        assert not any(
            i.opcode in (Opcode.ADD, Opcode.MUL) for i in main.instructions()
        )

    def test_respects_wraparound(self):
        source = """
        void main() {
            int a = 9223372036854775807;
            print(a + 1);
        }
        """
        module, _ = check_preserves(source)

    def test_division_by_zero_not_folded(self):
        # The fold must not evaluate UB at compile time; the fault stays
        # a runtime fault.
        source = """
        void main() {
            int z = 0;
            int guard = 0;
            if (guard) { print(7 / z); }
            print(1);
        }
        """
        module, _ = check_preserves(source)

    def test_constant_branch_becomes_jump(self):
        module = compile_source(
            "void main() { if (1) { print(1); } else { print(2); } }"
        )
        fold_constants_module(module)
        main = module.functions["main"]
        assert not any(
            i.opcode is Opcode.CBR for i in main.instructions()
        )
        assert run_module(module).output == ["1"]

    def test_algebraic_identities(self):
        source = """
        void main() {
            int x = 7;
            print(x + 0);
            print(x * 1);
            print(x - 0);
            print(x * 0);
        }
        """
        module, stats = check_preserves(source)
        assert stats["folded"] > 0


class TestCopyPropagation:
    def test_chain_collapses(self):
        module = compile_source(
            """
            void main() {
                int a = 5;
                int b = a;
                int c = b;
                print(c);
            }
            """
        )
        rewrites = propagate_copies(module.functions["main"])
        assert rewrites > 0
        assert run_module(module).output == ["5"]

    def test_redefinition_invalidates(self):
        source = """
        void main() {
            int a = 1;
            int b = a;
            a = 2;
            print(b);
            print(a);
        }
        """
        module, _ = check_preserves(source)
        assert run_module(module).output == ["1", "2"]

    def test_transitive_invalidation(self):
        source = """
        void main() {
            int a = 1;
            int b = a;
            int c = b;
            b = 9;
            print(c);
        }
        """
        module, _ = check_preserves(source)


class TestSimplifyCfg:
    def test_merges_chains(self):
        module = compile_source(
            "void main() { if (1) { print(1); } print(2); }"
        )
        fold_constants_module(module)
        removed = simplify_cfg(module.functions["main"])
        assert removed > 0
        assert run_module(module).output == ["1", "2"]

    def test_keeps_loops_intact(self):
        source = """
        void main() {
            int s = 0;
            int i;
            for (i = 0; i < 5; i++) { s += i; }
            print(s);
        }
        """
        module, _ = check_preserves(source)
        assert run_module(module).output == ["10"]


class TestPipeline:
    @pytest.mark.parametrize(
        "bench", ["mcf", "art", "gzip"]
    )
    def test_benchmarks_survive_optimization(self, bench):
        from repro.bench import compile_benchmark

        module = compile_benchmark(bench, "train")
        baseline = run_module(module)
        stats = optimize_module(module)
        verify_module(module)
        result = run_module(module)
        assert result.output == baseline.output
        # The optimizer should both do something and reduce work.
        assert sum(stats.values()) > 0
        assert result.instructions <= baseline.instructions

    def test_optimized_module_still_parallelizes(self):
        from repro import MachineConfig, parallelize_and_run
        from repro.bench import compile_benchmark

        module = compile_benchmark("twolf", "train")
        optimize_module(module)
        result = parallelize_and_run(module, MachineConfig(cores=4))
        assert result.output_matches
