"""Tests for the full HELIX transformation (Steps 1-9 assembled)."""

import pytest

from repro.analysis.loops import find_loops
from repro.core import HelixOptions, parallelize_module
from repro.core.parallelizer import ACTIVE_FLAG, HelixError, HelixParallelizer
from repro.frontend import compile_source
from repro.ir import Opcode, verify_module
from repro.runtime import run_module

ACCUMULATOR = """
int total;
void main() {
    int i;
    for (i = 0; i < 20; i++) {
        int w = i * i % 13;
        total = total + w;
    }
    print(total);
}
"""

DOALL = """
int a[32];
int chk;
void main() {
    int i;
    for (i = 0; i < 32; i++) { a[i] = i * 3; }
    for (i = 0; i < 32; i++) { chk = chk + a[i]; }
    print(chk);
}
"""


def loop_id_of(module, func_name="main", prefix="for"):
    forest = find_loops(module.functions[func_name])
    loop = next(l for l in forest if l.header.startswith(prefix))
    return loop.id


class TestStructure:
    def test_transformed_module_verifies(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        verify_module(transformed)
        assert len(infos) == 1

    def test_original_module_untouched(self):
        module = compile_source(ACCUMULATOR)
        count_before = module.instruction_count()
        parallelize_module(module, [loop_id_of(module)])
        assert module.instruction_count() == count_before

    def test_guard_and_flag_exist(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        info = infos[0]
        assert ACTIVE_FLAG in transformed.globals
        func = transformed.functions["main"]
        assert info.guard_block in func.blocks
        guard = func.blocks[info.guard_block]
        assert guard.terminator.opcode is Opcode.CBR
        # Sequential header and parallel preheader are the two arms.
        assert set(guard.terminator.targets) == {
            info.seq_header,
            info.par_preheader,
        }

    def test_both_versions_present(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        info = infos[0]
        func = transformed.functions["main"]
        assert info.seq_header in func.blocks
        assert info.par_header in func.blocks
        assert info.par_blocks <= set(func.blocks)

    def test_exit_stubs_clear_flag(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        info = infos[0]
        func = transformed.functions["main"]
        assert info.exit_stubs
        for stub_name in info.exit_stubs:
            stub = func.blocks[stub_name]
            store = stub.instructions[0]
            assert store.opcode is Opcode.STOREG
            assert store.args[0].name == ACTIVE_FLAG
            assert store.args[2].value == 0

    def test_next_iter_on_crossing_edges(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        func = transformed.functions["main"]
        next_iters = [
            i for i in func.instructions() if i.opcode is Opcode.NEXT_ITER
        ]
        assert next_iters

    def test_prologue_body_partition(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        info = infos[0]
        assert info.prologue_blocks
        assert info.body_blocks
        assert info.prologue_blocks.isdisjoint(info.body_blocks)
        assert info.par_header in info.prologue_blocks

    def test_counted_loop_detected(self):
        module = compile_source(ACCUMULATOR)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        assert infos[0].counted

    def test_data_dependent_exit_is_not_counted(self):
        source = """
        int total;
        void main() {
            int x = 1;
            while (total < 100) {
                total = total + x;
                x = x * 2 % 7 + 1;
            }
            print(total);
        }
        """
        module = compile_source(source)
        lid = loop_id_of(module, prefix="while")
        transformed, infos = parallelize_module(module, [lid])
        assert not infos[0].counted

    def test_unknown_loop_rejected(self):
        module = compile_source(ACCUMULATOR)
        parallelizer = HelixParallelizer(module)
        with pytest.raises(HelixError):
            parallelizer.parallelize_loop(("main", "nope"))


class TestSemantics:
    @pytest.mark.parametrize("source", [ACCUMULATOR, DOALL])
    def test_sequential_interpretation_identical(self, source):
        module = compile_source(source)
        baseline = run_module(module)
        loop_ids = []
        for loop in find_loops(module.functions["main"]):
            if loop.parent is None:
                loop_ids.append(loop.id)
        transformed, infos = parallelize_module(module, loop_ids)
        result = run_module(transformed)
        assert result.output == baseline.output

    def test_loop_in_called_function(self):
        source = """
        int acc;
        void kernel() {
            int i;
            for (i = 0; i < 10; i++) { acc = acc + i * 2; }
        }
        void main() {
            int r;
            for (r = 0; r < 3; r++) { kernel(); }
            print(acc);
        }
        """
        module = compile_source(source)
        baseline = run_module(module)
        lid = loop_id_of(module, func_name="kernel")
        transformed, infos = parallelize_module(module, [lid])
        assert run_module(transformed).output == baseline.output

    def test_nested_choice_guarded_at_runtime(self):
        # Parallelize both an outer loop and a loop it calls: the flag
        # must serialize the inner one dynamically.
        source = """
        int acc;
        void kernel() {
            int i;
            for (i = 0; i < 6; i++) { acc = acc + i; }
        }
        void main() {
            int r;
            for (r = 0; r < 4; r++) { kernel(); acc = acc * 2 % 1000; }
            print(acc);
        }
        """
        module = compile_source(source)
        baseline = run_module(module)
        outer = loop_id_of(module, func_name="main")
        inner = loop_id_of(module, func_name="kernel")
        transformed, infos = parallelize_module(module, [outer, inner])
        assert run_module(transformed).output == baseline.output

    def test_loop_with_break_semantics(self):
        source = """
        int total;
        void main() {
            int i;
            for (i = 0; i < 100; i++) {
                total = total + i;
                if (total > 50) { break; }
            }
            print(total);
            print(i);
        }
        """
        module = compile_source(source)
        baseline = run_module(module)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        assert run_module(transformed).output == baseline.output
        # Two distinct exits -> two stubs (Step 9's exit variable).
        assert len(infos[0].exit_stubs) >= 1


class TestInlining:
    CALL_DEP = """
    int total;
    int bump(int x) { total = total + x; return total; }
    void main() {
        int i;
        for (i = 0; i < 10; i++) {
            int w = i * 7 % 5;
            bump(w);
        }
        print(total);
    }
    """

    def test_endpoint_call_inlined(self):
        module = compile_source(self.CALL_DEP)
        transformed, infos = parallelize_module(module, [loop_id_of(module)])
        assert infos[0].inlined_calls >= 1

    def test_inlining_preserves_semantics(self):
        module = compile_source(self.CALL_DEP)
        baseline = run_module(module)
        transformed, _ = parallelize_module(module, [loop_id_of(module)])
        assert run_module(transformed).output == baseline.output

    def test_inlining_can_be_disabled(self):
        module = compile_source(self.CALL_DEP)
        options = HelixOptions(enable_inlining=False)
        transformed, infos = parallelize_module(
            module, [loop_id_of(module)], options=options
        )
        assert infos[0].inlined_calls == 0
        assert run_module(transformed).output == run_module(module).output


class TestStatistics:
    def test_signal_counts_recorded(self):
        module = compile_source(ACCUMULATOR)
        _, infos = parallelize_module(module, [loop_id_of(module)])
        info = infos[0]
        assert info.naive_waits >= info.final_waits >= 0
        assert info.naive_signals >= info.final_signals
        assert info.segments_per_iteration >= 1

    def test_step6_reduces_sync_ops(self):
        source = """
        int a; int b; int c;
        void main() {
            int i;
            for (i = 0; i < 10; i++) {
                int w = i * 3 % 7;
                a = a + w; b = b + w; c = c ^ w;
            }
            print(a + b + c);
        }
        """
        module = compile_source(source)
        _, with_opt = parallelize_module(module, [loop_id_of(module)])
        _, without_opt = parallelize_module(
            module,
            [loop_id_of(module)],
            options=HelixOptions(enable_signal_optimization=False),
        )
        assert (
            with_opt[0].final_waits + with_opt[0].final_signals
            < without_opt[0].final_waits + without_opt[0].final_signals
        )
        assert with_opt[0].segments_per_iteration < without_opt[
            0
        ].segments_per_iteration

    def test_code_size_reported(self):
        module = compile_source(ACCUMULATOR)
        _, infos = parallelize_module(module, [loop_id_of(module)])
        assert infos[0].par_instruction_count > 0
        assert infos[0].code_size_bytes() == infos[0].par_instruction_count * 4
