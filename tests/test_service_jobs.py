"""Tests for the service domain layer: jobs, states, observers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import (
    BoundObserver,
    CompileJob,
    CompositeObserver,
    EvaluationObserver,
    InvalidTransition,
    Job,
    JobState,
    ObservedEvent,
    RecordingObserver,
    RunJob,
    SuiteJob,
    TraceJob,
    check_event_ordering,
)


# -- state machine -----------------------------------------------------------


def test_happy_path_transitions():
    job = Job(spec=RunJob("mcf"))
    assert job.state is JobState.QUEUED
    assert not job.finished.is_set()
    job.transition(JobState.RUNNING)
    job.transition(JobState.DONE)
    assert job.state.terminal
    assert job.finished.is_set()


def test_retry_edge_running_to_queued():
    job = Job(spec=RunJob("mcf"))
    job.transition(JobState.RUNNING)
    job.transition(JobState.QUEUED)
    assert not job.finished.is_set()
    job.transition(JobState.RUNNING)
    job.transition(JobState.FAILED)
    assert job.finished.is_set()


@pytest.mark.parametrize(
    "path",
    [
        (JobState.DONE,),  # queued -> done skips running
        (JobState.FAILED,),  # queued -> failed skips running
        (JobState.RUNNING, JobState.DONE, JobState.RUNNING),
        (JobState.CANCELLED, JobState.RUNNING),
        (JobState.RUNNING, JobState.FAILED, JobState.QUEUED),
    ],
)
def test_illegal_transitions_raise(path):
    job = Job(spec=RunJob("mcf"))
    with pytest.raises(InvalidTransition):
        for state in path:
            job.transition(state)


def test_job_ids_unique():
    ids = {Job(spec=RunJob("mcf")).id for _ in range(50)}
    assert len(ids) == 50


def test_as_dict_wire_form():
    job = Job(spec=SuiteJob(benches=("mcf", "vpr"), cores=4, jobs=2))
    payload = job.as_dict()
    assert payload["op"] == "suite"
    assert payload["state"] == "queued"
    assert payload["spec"] == {
        "benches": ["mcf", "vpr"],
        "cores": 4,
        "jobs": 2,
    }


def test_spec_ops():
    assert CompileJob("mcf").op == "compile"
    assert RunJob("mcf").op == "run"
    assert SuiteJob().op == "suite"
    assert TraceJob("mcf").op == "trace"


# -- observers ---------------------------------------------------------------


def test_composite_fans_out_in_order():
    a, b = RecordingObserver(), RecordingObserver()
    composite = CompositeObserver(a, b, None)
    job = Job(spec=RunJob("mcf"))
    composite.job_started(job)
    composite.stage_completed(job, "mcf", "module", "compute", 0.1)
    composite.artifact_stored(job, "module", "k", "store")
    composite.job_finished(job)
    assert [e.kind for e in a.events] == [e.kind for e in b.events] == [
        "job_started",
        "stage_completed",
        "artifact_stored",
        "job_finished",
    ]


def test_bound_observer_pins_job():
    recorder = RecordingObserver()
    job = Job(spec=RunJob("mcf"))
    bound = BoundObserver(recorder, job)
    # The runner emits job=None; the bound observer fills it in.
    bound.stage_completed(None, "mcf", "profile", "memory", 0.0)
    bound.artifact_stored(None, "profile", "k", "hit")
    assert [e.job_id for e in recorder.events] == [job.id, job.id]
    assert recorder.kinds(job.id) == ["stage_completed", "artifact_stored"]


def test_base_observer_is_noop():
    obs = EvaluationObserver()
    obs.job_started(None)
    obs.stage_completed(None, "b", "s", "o", 0.0)
    obs.artifact_stored(None, "k", "key", "hit")
    obs.job_finished(None)


# -- event-ordering contract -------------------------------------------------


def _ev(event, **args):
    return ObservedEvent(kind=event, job_id="j", args=args)


def test_ordering_accepts_wellformed_stream():
    events = [
        _ev("job_started", retries=0),
        _ev("artifact_stored", artifact="module", key="k", outcome="store"),
        _ev("stage_completed", bench="mcf", stage="module",
            outcome="compute", seconds=0.1),
        _ev("job_finished", state="done", retries=0),
    ]
    assert check_event_ordering(events) == []


def test_ordering_accepts_retry_stream():
    events = [
        _ev("job_started", retries=0),
        _ev("stage_completed", bench="b", stage="s",
            outcome="compute", seconds=0.0),
        _ev("job_started", retries=1),
        _ev("job_finished", state="done", retries=1),
    ]
    assert check_event_ordering(events) == []


@pytest.mark.parametrize(
    "events, fragment",
    [
        ([], "empty"),
        ([_ev("stage_completed", bench="b", stage="s", outcome="c",
              seconds=0.0)], "not job_started"),
        ([_ev("job_started", retries=0)], "not job_finished"),
        (
            [
                _ev("job_started", retries=0),
                _ev("job_finished", state="done", retries=0),
                _ev("job_finished", state="done", retries=0),
            ],
            "job_finished",
        ),
        (
            [
                _ev("job_started", retries=1),
                _ev("job_finished", state="done", retries=1),
            ],
            "retries",
        ),
    ],
)
def test_ordering_flags_violations(events, fragment):
    problems = check_event_ordering(events)
    assert problems
    assert any(fragment in p for p in problems)


@settings(max_examples=100, deadline=None)
@given(
    stages=st.lists(
        st.tuples(
            st.sampled_from(["stage_completed", "artifact_stored"]),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=8,
    ),
    attempts=st.integers(min_value=1, max_value=4),
)
def test_ordering_property(stages, attempts):
    """Any stream built by the contract passes the contract checker."""
    events = []
    per_attempt = len(stages) // attempts + 1
    index = 0
    for attempt in range(attempts):
        events.append(_ev("job_started", retries=attempt))
        for kind, _ in stages[index:index + per_attempt]:
            if kind == "stage_completed":
                events.append(
                    _ev(kind, bench="b", stage="s", outcome="compute",
                        seconds=0.0)
                )
            else:
                events.append(_ev(kind, kind_="k", key="k", outcome="hit"))
        index += per_attempt
    events.append(
        _ev("job_finished", state="done", retries=attempts - 1)
    )
    assert check_event_ordering(events) == []
    # ... and the same stream with the terminal event displaced fails.
    if len(events) > 2:
        broken = [events[-1]] + events[:-1]
        assert check_event_ordering(broken)
