"""Differential tests: compiled trace scheduler vs the reference engine.

The compiled engine (:func:`schedule_compact` over packed traces) must be
field-exact with :func:`schedule_invocation_reference` for every trace
and machine, and batched replay must be indistinguishable from both the
legacy replay formulation and a fresh execution under the target
machine.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loops import find_loops
from repro.core import parallelize_module
from repro.evaluation.sched_bench import reference_replay, sweep_machines
from repro.frontend import compile_source
from repro.runtime import run_module
from repro.runtime.machine import MachineConfig, PrefetchMode
from repro.runtime.parallel import ParallelExecutor, schedule_invocation
from repro.runtime.sched import (
    schedule_compact_many,
    schedule_invocation_reference,
    schedule_many,
)
from repro.runtime.trace import CompactInvocationTrace, InvocationTrace

#: Program shapes covering the scheduler's behaviours: counted DOALL
#: (fast path), cross-iteration data dependences (waits/signals/segment
#: intervals and transfers), non-counted loops (control signals), and
#: zero-iteration invocations.
SOURCES = {
    "doall": """
        int out;
        void main() {
            int i;
            int acc = 0;
            for (i = 0; i < 24; i++) { acc = acc + ((i * 7) ^ (i + 3)); }
            out = acc;
            print(out);
        }
    """,
    "reduction": """
        int total;
        void main() {
            int i;
            for (i = 0; i < 24; i++) {
                int k = 0;
                int f = 0;
                while (k < 9) { f = f + (k ^ i); k++; }
                total = (total + f) % 9973;
            }
            print(total);
        }
    """,
    "whileloop": """
        int acc;
        void main() {
            int v = 1;
            while (v < 4000) {
                acc = (acc + v) % 7919;
                v = v + (acc % 5) + 3;
            }
            print(acc); print(v);
        }
    """,
    "repeat_kernel": """
        int acc;
        void kernel(int n, int seed) {
            int i;
            for (i = 0; i < n; i++) { acc = (acc + i * seed) % 9973; }
        }
        void main() {
            kernel(5, 1); kernel(6, 2); kernel(7, 3);
            kernel(8, 4); kernel(9, 5); kernel(10, 6);
            print(acc);
        }
    """,
    "multi_invocation": """
        int acc;
        void kernel(int n, int seed) {
            int i;
            for (i = 0; i < n; i++) { acc = (acc + i * seed) % 9973; }
        }
        void main() {
            int r;
            for (r = 0; r < 7; r++) { kernel(r * 4, r + 1); }
            kernel(0, 99);
            print(acc);
        }
    """,
}

#: Machines exercising every engine path: each prefetch mode at several
#: core counts (including one core), no-SMT, non-TSO barriers, and
#: degenerate/extreme latencies.
MACHINES = [
    MachineConfig(cores=cores, prefetch_mode=mode)
    for cores in (1, 2, 3, 6)
    for mode in PrefetchMode
] + [
    MachineConfig(cores=4, smt=False),
    MachineConfig(cores=4, total_store_ordering=False),
    MachineConfig(
        cores=4,
        signal_latency=4,
        prefetched_signal_latency=4,
        word_transfer_cycles=16,
    ),
    MachineConfig(
        cores=5,
        signal_latency=220,
        prefetched_signal_latency=0,
        word_transfer_cycles=220,
        total_store_ordering=False,
    ),
]

BASE = MachineConfig(cores=4)

_prepared = {}


def _prepare(name):
    """Transform once per source; record traces under the base machine."""
    cached = _prepared.get(name)
    if cached is None:
        module = compile_source(SOURCES[name])
        loop_ids = []
        for func in module.functions.values():
            loop_ids += [
                l.id for l in find_loops(func) if l.parent is None
            ]
        baseline = run_module(module)
        transformed, infos = parallelize_module(module, loop_ids, BASE)
        executor = ParallelExecutor(transformed, infos, BASE)
        result = executor.execute()
        assert result.output == baseline.output
        cached = (transformed, infos, executor, result)
        _prepared[name] = cached
    return cached


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_schedules_field_exact_across_machines(name):
    _, infos, executor, result = _prepare(name)
    info_by_id = {info.loop_id: info for info in infos}
    assert result.traces, f"{name}: expected recorded traces"
    for machine in MACHINES:
        for trace in result.traces:
            info = info_by_id[trace.loop_id]
            compiled = schedule_invocation(trace, info, machine)
            reference = schedule_invocation_reference(
                trace.to_invocation_trace(), info, machine
            )
            assert compiled == reference, (
                f"{name} under {machine.fingerprint()}: "
                f"{compiled} != {reference}"
            )


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_schedule_compact_many_field_exact_across_machines(name):
    """The lockstep multi-machine engine must match per-machine
    ``schedule_compact`` and the reference interpreter field for field
    over the full differential grid (acceptance criterion)."""
    _, infos, executor, result = _prepare(name)
    info_by_id = {info.loop_id: info for info in infos}
    for trace in result.traces:
        info = info_by_id[trace.loop_id]
        column = schedule_compact_many(trace, info, MACHINES)
        assert len(column) == len(MACHINES)
        legacy = trace.to_invocation_trace()
        for machine, got in zip(MACHINES, column):
            assert got == schedule_invocation(trace, info, machine)
            assert got == schedule_invocation_reference(legacy, info, machine)


def test_schedule_compact_many_degenerate_grids():
    _, infos, executor, _ = _prepare("multi_invocation")
    info_by_id = {info.loop_id: info for info in infos}
    trace = executor.traces[0]
    info = info_by_id[trace.loop_id]
    assert schedule_compact_many(trace, info, []) == []
    single = schedule_compact_many(trace, info, [MACHINES[0]])
    assert single == [schedule_invocation(trace, info, MACHINES[0])]
    # Zero-iteration invocations cost their sequential span everywhere,
    # as fresh (mutable) result objects.
    empty = CompactInvocationTrace.from_trace(
        InvocationTrace(loop_id=trace.loop_id, start_cycles=5, end_cycles=42)
    )
    column = schedule_compact_many(empty, info_by_id[empty.loop_id], MACHINES)
    assert len(column) == len(MACHINES)
    assert len({id(r) for r in column}) == len(column)
    for got in column:
        assert got.parallel_cycles == got.sequential_cycles


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_cohort_engine_matches_per_trace_engines(name, monkeypatch):
    """``schedule_many``'s numpy cohort walk (forced on by dropping the
    cohort threshold to 1) must be field-exact with per-machine
    ``schedule_compact`` for every trace and machine."""
    import repro.runtime.sched as sched_mod

    monkeypatch.setattr(sched_mod, "_MIN_COHORT", 1)
    _, infos, executor, _ = _prepare(name)
    info_by_id = {info.loop_id: info for info in infos}
    traces = list(executor.traces)
    loops = [info_by_id[t.loop_id] for t in traces]
    columns = schedule_many(traces, loops, MACHINES)
    assert len(columns) == len(traces)
    for trace, info, column in zip(traces, loops, columns):
        for machine, got in zip(MACHINES, column):
            assert got == schedule_invocation(trace, info, machine)


def test_replay_many_sharded_equals_inline(monkeypatch):
    """``jobs`` sharding must not change a single schedule field."""
    import repro.runtime.parallel as parallel_mod

    transformed, infos, _, _ = _prepare("repeat_kernel")
    inline = ParallelExecutor(transformed, infos, BASE)
    inline.execute()
    sharded = ParallelExecutor(transformed, infos, BASE)
    sharded.execute()
    monkeypatch.setattr(parallel_mod, "_SHARD_MIN_TRACES", 1)
    probes = MACHINES[:6]
    inline_runs = inline.replay_many(probes)
    sharded_runs = sharded.replay_many(probes, jobs=2)
    for one, two in zip(inline_runs, sharded_runs):
        assert one.result.cycles == two.result.cycles
        assert one.result.output == two.result.output
        assert one.loop_stats == two.loop_stats
    for probe in probes:
        assert (
            inline._schedules[probe.fingerprint()]
            == sharded._schedules[probe.fingerprint()]
        )


def test_lagging_schedule_column_extends_incrementally(monkeypatch):
    """A cached column that is merely shorter than the trace list is
    extended in place, not recomputed from scratch."""
    import repro.runtime.parallel as parallel_mod

    transformed, infos, _, _ = _prepare("repeat_kernel")
    executor = ParallelExecutor(transformed, infos, BASE)
    executor.execute()
    probe = BASE.with_cores(2)
    executor.replay(probe)
    full = list(executor._schedules[probe.fingerprint()])
    assert len(full) == len(executor.traces) > 3

    # Truncate the cached column as if traces had been appended since.
    executor._schedules[probe.fingerprint()] = full[:-3]
    scheduled = []
    real = parallel_mod.schedule_many

    def counting(traces, loops, machines):
        scheduled.append(len(traces))
        return real(traces, loops, machines)

    monkeypatch.setattr(parallel_mod, "schedule_many", counting)
    executor.replay(probe)
    assert scheduled == [3]  # only the missing suffix is scheduled
    assert executor._schedules[probe.fingerprint()] == full


def test_scheduling_work_across_run_replay_cycles(monkeypatch):
    """Regression for the memo lifecycle: across run -> replay_many ->
    run -> replay_many, each sweep schedules every trace exactly once
    per missing machine set -- re-running resets the memo (new traces)
    and the second sweep never reschedules the fresh baseline column."""
    import repro.runtime.parallel as parallel_mod

    transformed, infos, _, _ = _prepare("reduction")
    executor = ParallelExecutor(transformed, infos, BASE)
    probes = [BASE.with_cores(2), BASE.with_cores(3)]
    scheduled = []
    real = parallel_mod.schedule_many

    def counting(traces, loops, machines):
        scheduled.append((len(traces), [m.fingerprint() for m in machines]))
        return real(traces, loops, machines)

    monkeypatch.setattr(parallel_mod, "schedule_many", counting)
    for _ in range(2):
        executor.execute()
        count = len(executor.traces)
        scheduled.clear()
        executor.replay_many(probes)
        assert scheduled == [(count, [p.fingerprint() for p in probes])]
        scheduled.clear()
        executor.replay_many(probes)
        assert scheduled == []  # second sweep fully memoized


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_replay_many_matches_reference_replay(name):
    _, _, executor, _ = _prepare(name)
    legacy = [t.to_invocation_trace() for t in executor.traces]
    compiled_runs = executor.replay_many(MACHINES)
    for machine, compiled in zip(MACHINES, compiled_runs):
        reference, _schedules = reference_replay(executor, machine, legacy)
        assert compiled.result.cycles == reference.result.cycles
        assert compiled.result.output == reference.result.output
        assert compiled.loop_stats == reference.loop_stats


def test_replay_many_equals_sequential_replays():
    _, _, executor, _ = _prepare("reduction")
    probes = MACHINES[:6]
    batched = executor.replay_many(probes)
    for machine, from_batch in zip(probes, batched):
        single = executor.replay(machine)
        assert single.result.cycles == from_batch.result.cycles
        assert single.loop_stats == from_batch.loop_stats


def test_baseline_schedule_memoized_across_replays(monkeypatch):
    transformed, infos, _, _ = _prepare("reduction")
    executor = ParallelExecutor(transformed, infos, BASE)
    executor.execute()
    # The executing machine's schedule column is seeded during the run.
    baseline = executor._schedules.get(BASE.fingerprint())
    assert baseline is not None
    assert len(baseline) == len(executor.traces)

    import repro.runtime.parallel as parallel_mod

    calls = []
    real = parallel_mod.schedule_many

    def counting(traces, loops, machines):
        calls.append([m.fingerprint() for m in machines])
        return real(traces, loops, machines)

    monkeypatch.setattr(parallel_mod, "schedule_many", counting)
    probe = BASE.with_cores(2)
    executor.replay(probe)
    # Only the new machine's column is computed; the baseline is reused.
    assert calls
    assert {fp for grid in calls for fp in grid} == {probe.fingerprint()}
    first = len(calls)
    executor.replay(probe)
    assert len(calls) == first  # second replay fully memoized


def test_sweep_machines_cover_distinct_fingerprints():
    machines = sweep_machines(MachineConfig(cores=6))
    prints = [m.fingerprint() for m in machines]
    assert len(prints) == len(set(prints))
    assert MachineConfig(cores=6).fingerprint() not in prints


# ------------------------------------------------------- property testing


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(sorted(SOURCES)),
    cores=st.integers(min_value=1, max_value=6),
    mode=st.sampled_from(list(PrefetchMode)),
    tso=st.booleans(),
    latencies=st.sampled_from([(110, 4), (4, 4), (220, 0), (64, 1)]),
)
def test_replay_is_field_identical_to_fresh_execution(
    name, cores, mode, tso, latencies
):
    """``replay(machine)`` on recorded traces must be indistinguishable
    from re-running the same transformed module under that machine --
    including zero-iteration invocations (``multi_invocation``), one
    core, and every prefetch mode."""
    transformed, infos, executor, _ = _prepare(name)
    signal_latency, prefetched = latencies
    machine = MachineConfig(
        cores=cores,
        prefetch_mode=mode,
        total_store_ordering=tso,
        signal_latency=signal_latency,
        prefetched_signal_latency=prefetched,
        word_transfer_cycles=signal_latency,
    )
    replayed = executor.replay(machine)
    fresh = ParallelExecutor(transformed, infos, machine).execute()
    assert replayed.result.cycles == fresh.result.cycles
    assert replayed.result.output == fresh.result.output
    assert replayed.result.instructions == fresh.result.instructions
    assert replayed.loop_stats == fresh.loop_stats


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(sorted(SOURCES)),
    cores=st.integers(min_value=1, max_value=8),
    mode=st.sampled_from(list(PrefetchMode)),
    barrier=st.sampled_from([0, 20, 7]),
)
def test_compiled_engine_matches_reference_engine(name, cores, mode, barrier):
    """Property form of the differential: arbitrary machine knobs."""
    _, infos, executor, _ = _prepare(name)
    info_by_id = {info.loop_id: info for info in infos}
    machine = dataclasses.replace(
        MachineConfig(cores=cores, prefetch_mode=mode),
        total_store_ordering=barrier == 0,
        barrier_cycles=barrier or 20,
    )
    for trace in executor.traces:
        info = info_by_id[trace.loop_id]
        assert schedule_invocation(
            trace, info, machine
        ) == schedule_invocation_reference(
            trace.to_invocation_trace(), info, machine
        )
