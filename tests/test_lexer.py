"""Tests for the MiniC lexer."""

import pytest

from repro.frontend import MiniCError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int intx for forth while")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
        ]

    def test_integer_literal(self):
        token = tokenize("12345")[0]
        assert token.kind is TokenKind.INT_LIT and token.value == 12345

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT_LIT and token.value == 3.25

    def test_float_exponent(self):
        token = tokenize("1e3")[0]
        assert token.kind is TokenKind.FLOAT_LIT and token.value == 1000.0
        token = tokenize("2.5e-2")[0]
        assert token.value == 0.025

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.FLOAT_LIT and token.value == 0.5

    def test_underscored_identifier(self):
        token = tokenize("_foo_bar1")[0]
        assert token.kind is TokenKind.IDENT and token.text == "_foo_bar1"


class TestPunctuation:
    def test_maximal_munch(self):
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("x>>=1") == ["x", ">>=", "1"]
        assert texts("i++") == ["i", "++"]
        assert texts("a&&b") == ["a", "&&", "b"]
        assert texts("a&b") == ["a", "&", "b"]

    def test_compound_assignment(self):
        assert texts("x+=2") == ["x", "+=", "2"]


class TestCommentsAndPositions:
    def test_line_comments(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comments(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(MiniCError):
            tokenize("/* never ends")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]
        assert tokens[2].column == 3

    def test_line_tracking_through_block_comment(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].line == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(MiniCError) as err:
            tokenize("a $ b")
        assert "$" in str(err.value)

    def test_malformed_number(self):
        with pytest.raises(MiniCError):
            tokenize("1.2.3")

    def test_malformed_exponent(self):
        with pytest.raises(MiniCError):
            tokenize("1e+")
