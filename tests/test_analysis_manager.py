"""Tests for the versioned analysis manager.

Three layers of guarantees:

* the version protocol -- every mutating API and pass bumps the version
  of the IR it touches, and function bumps reach the owning module;
* the caching contract -- repeated requests hit, mutations invalidate,
  and a stale result is never served (checked property-style against
  fresh recomputation under random interleavings);
* the migration -- the managed pipeline is byte-identical to the
  recompute-every-request legacy path, while running the whole-module
  analyses at most once per mutation.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import MachineConfig, compile_minic
from repro.analysis.cfg import CFGView
from repro.analysis.loops import find_loops
from repro.analysis.manager import AnalysisManager, UncachedAnalysisManager
from repro.api import parallelize, parallelize_and_run
from repro.ir import BasicBlock, Instruction, Opcode
from repro.ir.module import clone_module
from repro.ir.printer import module_to_str
from repro.ir.types import Type
from repro.transform.constfold import fold_constants
from repro.transform.dce import eliminate_dead_code
from repro.transform.inline import inline_call
from repro.transform.normalize import normalize_loop

from tests.helpers import build_cfg

PROGRAM = """
int total;
void main() {
    int i;
    for (i = 0; i < 40; i++) {
        int k = 0;
        int f = 0;
        while (k < 30) { f = f + (k ^ i); k++; }
        total = (total + f) % 9973;
    }
    print(total);
}
"""

CALL_PROGRAM = """
int acc;
int bump(int x) { return x * 3 + 1; }
void main() {
    int i;
    for (i = 0; i < 25; i++) {
        acc = (acc + bump(i)) % 1009;
    }
    print(acc);
}
"""


def compile_program(source=PROGRAM):
    return compile_minic(source, name="managed")


# ---------------------------------------------------------------- versions


class TestVersionProtocol:
    def test_structural_apis_bump_function_and_module(self):
        module = compile_program()
        func = module.functions["main"]
        fv, mv = func.version, module.version

        block = func.new_block("probe")
        block.append(Instruction(Opcode.RET))
        assert func.version > fv and module.version > mv

        fv, mv = func.version, module.version
        extra = BasicBlock("probe_extra")
        extra.append(Instruction(Opcode.RET))
        func.add_block(extra)
        assert func.version > fv and module.version > mv

        fv = func.version
        func.remove_block("probe_extra")
        assert func.version > fv

        fv = func.version
        func.add_local_array("probe_arr", Type.INT, 4)
        assert func.version > fv

        fv = func.version
        func.set_entry(func.entry.name)
        assert func.version > fv

    def test_add_global_bumps_module(self):
        module = compile_program()
        mv = module.version
        module.add_global("probe_g", Type.INT, 1)
        assert module.version > mv

    def test_clone_is_independent(self):
        module = compile_program()
        clone = clone_module(module)
        assert clone.functions["main"]._module is clone
        mv = module.version
        clone.functions["main"].bump_version()
        assert module.version == mv

    def test_inline_bumps_caller(self):
        module = compile_minic(CALL_PROGRAM, name="callprog")
        main = module.functions["main"]
        call = next(
            i for i in main.instructions() if i.opcode is Opcode.CALL
        )
        fv, mv = main.version, module.version
        inline_call(module, main, call)
        assert main.version > fv and module.version > mv

    def test_passes_bump_only_on_change(self):
        module = compile_program()
        func = module.functions["main"]
        # Run to a fixed point, then a no-op run must not bump.
        while fold_constants(func) or eliminate_dead_code(func):
            pass
        fv = func.version
        assert fold_constants(func) == 0
        assert eliminate_dead_code(func) == 0
        assert func.version == fv

    def test_normalize_bumps(self):
        # Two outside predecessors of the header: normalization must
        # create a preheader, mutating the function.
        func = build_cfg(
            {
                "A": ("B", "C"),
                "B": ("H",),
                "C": ("H",),
                "H": ("L", "X"),
                "L": ("H",),
                "X": (),
            }
        )
        loop = next(
            l for l in find_loops(func) if l.header == "H"
        )
        fv = func.version
        normalize_loop(func, loop)
        assert func.version > fv


# ---------------------------------------------------------------- caching


class TestCachingContract:
    def test_repeated_requests_hit(self):
        module = compile_program()
        func = module.functions["main"]
        am = AnalysisManager()
        assert am.cfg(func) is am.cfg(func)
        assert am.loops(func) is am.loops(func)
        assert am.dependence(module) is am.dependence(module)
        # Dependent analyses (loops, dominators) pull the CFG through the
        # cache too, so hits accumulate -- but it computes exactly once.
        assert am.counter("cfg").hits >= 1
        assert am.counter("cfg").misses == 1

    def test_mutation_invalidates(self):
        module = compile_program()
        func = module.functions["main"]
        am = AnalysisManager()
        before = am.cfg(func)
        dep_before = am.dependence(module)
        func.new_block("inv_probe").append(Instruction(Opcode.RET))
        after = am.cfg(func)
        assert after is not before
        assert "inv_probe0" in after.succs or any(
            name.startswith("inv_probe") for name in after.succs
        )
        assert am.dependence(module) is not dep_before
        assert am.counter("cfg").invalidations == 1
        assert am.counter("dependence").invalidations == 1

    def test_function_scope_survives_other_function_edits(self):
        module = compile_minic(CALL_PROGRAM, name="callprog")
        main = module.functions["main"]
        bump = module.functions["bump"]
        am = AnalysisManager()
        main_cfg = am.cfg(main)
        am.dependence(module)
        bump.new_block("side_probe").append(Instruction(Opcode.RET))
        # Function-scoped result for the untouched function survives...
        assert am.cfg(main) is main_cfg
        # ...while the module-scoped analysis recomputes.
        assert am.counter("dependence").invalidations == 0
        am.dependence(module)
        assert am.counter("dependence").invalidations == 1

    def test_uncached_manager_always_recomputes(self):
        module = compile_program()
        func = module.functions["main"]
        am = UncachedAnalysisManager()
        assert am.cfg(func) is not am.cfg(func)
        assert am.counter("cfg").hits == 0
        assert am.counter("cfg").misses == 2

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(st.integers(0, 3), min_size=1, max_size=12))
    def test_stale_results_never_served(self, ops):
        """Under any interleaving of queries and mutations, a managed
        query always equals a fresh recomputation."""
        module = compile_program()
        func = module.functions["main"]
        am = AnalysisManager()
        probes = 0
        for op in ops:
            if op == 0:  # mutate: grow the CFG
                block = func.new_block(f"h{probes}_")
                block.append(Instruction(Opcode.RET))
                probes += 1
            elif op == 1:  # mutate: run a cleanup pass
                fold_constants(func)
            elif op == 2:  # query CFG
                assert am.cfg(func).succs == CFGView(func).succs
            else:  # query loop forest
                got = {
                    (l.header, frozenset(l.blocks)) for l in am.loops(func)
                }
                want = {
                    (l.header, frozenset(l.blocks)) for l in find_loops(func)
                }
                assert got == want


# ---------------------------------------------------------------- migration


def dependence_signature(manager, module):
    """Order-independent digest of every loop's dependence set.

    Endpoints are identified by (block, index) position, not uid --
    uids are allocated process-globally, so two separately compiled
    copies of the same program never share them.
    """
    analysis = manager.dependence(module)
    digest = []
    for name in sorted(module.functions):
        func = module.functions[name]
        position = {
            instr.uid: (block.name, i)
            for block in func.blocks.values()
            for i, instr in enumerate(block.instructions)
        }
        for loop in manager.loops(func):
            deps = analysis.loop_dependences(func, loop)
            digest.append(
                (
                    name,
                    loop.header,
                    sorted(
                        tuple(sorted(position[e.uid] for e in dep.endpoints()))
                        for dep in deps
                    ),
                )
            )
    return sorted(digest)


class TestDifferential:
    @pytest.mark.parametrize("source", [PROGRAM, CALL_PROGRAM])
    def test_managed_pipeline_matches_legacy(self, source):
        machine = MachineConfig(cores=4)

        def run(make_manager):
            module = compile_minic(source, name="diff")
            manager = make_manager()
            result = parallelize_and_run(module, machine, manager=manager)
            return module, manager, result

        ref_mod, ref_am, legacy = run(UncachedAnalysisManager)
        new_mod, new_am, managed = run(AnalysisManager)

        assert legacy.chosen_loops == managed.chosen_loops
        assert module_to_str(legacy.transformed) == module_to_str(
            managed.transformed
        )
        assert legacy.sequential.output == managed.sequential.output
        assert legacy.parallel.output == managed.parallel.output
        assert dependence_signature(ref_am, ref_mod) == dependence_signature(
            new_am, new_mod
        )

    def test_module_analyses_run_once_per_mutation(self):
        """callgraph/points_to compute exactly once per module mutation
        over the whole pipeline: cold once per module (the reference
        module and its transformed clone), plus once per invalidation."""
        module = compile_program()
        manager = AnalysisManager()
        result = parallelize(module, MachineConfig(cores=4), manager=manager)
        assert result.infos, "test program must parallelize a loop"
        for name in ("callgraph", "points_to"):
            counter = manager.counter(name)
            assert counter.misses == counter.invalidations + 2, name
        # Function-scoped analyses are shared across many call sites.
        assert manager.counter("cfg").hits > 0

    def test_helix_run_counter_law(self, tiny_bench):
        """Same law over a full helix_run through the EvaluationRunner."""
        from repro.evaluation.runner import EvaluationRunner

        runner = EvaluationRunner(MachineConfig(cores=4))
        run = runner.helix_run(tiny_bench)
        assert run.infos
        for name in ("callgraph", "points_to"):
            counter = runner.analysis.counter(name)
            assert counter.misses == counter.invalidations + 2, name
        # The mirrored StageStats rows agree with the manager's counters.
        stages = runner.stats.as_dict()
        row = stages["analysis:points_to"]
        points_to = runner.analysis.counter("points_to")
        assert row["computes"] == points_to.misses
        assert row["invalidations"] == points_to.invalidations


# ---------------------------------------------------------------- surfacing


@pytest.fixture()
def tiny_bench(monkeypatch):
    from repro.bench import suite as bench_suite
    from repro.evaluation import runner as runner_mod

    spec = bench_suite.BenchmarkSpec(
        "tinymgr", "synthetic manager test bench", lambda scale: PROGRAM,
        1.0, "test",
    )
    monkeypatch.setitem(bench_suite.BENCHMARKS, "tinymgr", spec)
    monkeypatch.setattr(runner_mod, "benchmark_names", lambda: ["tinymgr"])
    return "tinymgr"


class TestObservability:
    def test_compile_pass_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.mc"
        path.write_text(PROGRAM)
        assert main(["compile", str(path), "--pass-stats"]) == 0
        out = capsys.readouterr().out
        assert "chosen loops" in out
        assert "Analysis manager statistics" in out
        assert "dependence" in out and "points_to" in out

    def test_suite_report_contains_analyses(self, tiny_bench, tmp_path,
                                            capsys):
        from repro.cli import main

        report_path = tmp_path / "suite.json"
        argv = [
            "suite", "--cores", "4", "--stats",
            "--report", str(report_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Analysis manager statistics" in out
        assert "invalidated" in out
        report = json.loads(report_path.read_text())
        assert "analyses" in report
        assert "dependence" in report["analyses"]
        dep = report["analyses"]["dependence"]
        assert dep["computes"] >= 1
        assert "invalidations" in dep

    def test_bench_passes_report(self, tiny_bench, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "BENCH_passes.json"
        argv = [
            "bench-passes", "--benches", "tinymgr",
            "--repeat", "2", "--out", str(out_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "tinymgr" in out and "speedup" in out
        report = json.loads(out_path.read_text())
        assert report["repeat"] == 2
        (program,) = report["programs"]
        assert program["name"] == "tinymgr"
        assert program["uncached_seconds"] > 0
        assert program["analyses"]
