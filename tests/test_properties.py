"""Property-based tests (hypothesis) for core invariants.

The headline property: for randomly generated MiniC programs, HELIX
parallelization preserves observable behaviour exactly -- the paper's
non-speculative correctness claim.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import MachineConfig, compile_minic, parallelize_and_run
from repro.analysis.cfg import CFGView
from repro.analysis.dominators import dominators, post_dominators
from repro.analysis.loops import find_loops
from repro.runtime import run_module
from repro.runtime.interpreter import c_div, c_mod, wrap_int

from tests.helpers import build_cfg

# ---------------------------------------------------------------- arithmetic

ints64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestArithmeticProperties:
    @given(ints64)
    def test_wrap_int_is_idempotent(self, x):
        assert wrap_int(wrap_int(x)) == wrap_int(x)

    @given(st.integers())
    def test_wrap_int_in_range(self, x):
        w = wrap_int(x)
        assert -(2**63) <= w < 2**63

    @given(st.integers())
    def test_wrap_int_congruent_mod_2_64(self, x):
        assert (wrap_int(x) - x) % (2**64) == 0

    @given(ints64, ints64.filter(lambda b: b != 0))
    def test_c_division_identity(self, a, b):
        q, r = c_div(a, b), c_mod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(ints64, ints64.filter(lambda b: b != 0))
    def test_c_mod_sign_follows_dividend(self, a, b):
        r = c_mod(a, b)
        assert r == 0 or (r > 0) == (a > 0)


# ---------------------------------------------------------------- expressions


@st.composite
def int_exprs(draw, depth=0):
    """A MiniC integer expression over variables a, b, c with its Python
    evaluator."""
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            value = draw(st.integers(-50, 50))
            return str(value), lambda env, v=value: v
        name = "abc"[choice - 1]
        return name, lambda env, n=name: env[n]
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left_src, left_fn = draw(int_exprs(depth=depth + 1))
    right_src, right_fn = draw(int_exprs(depth=depth + 1))

    def evaluate(env, op=op, lf=left_fn, rf=right_fn):
        a, b = lf(env), rf(env)
        if op == "+":
            return wrap_int(a + b)
        if op == "-":
            return wrap_int(a - b)
        if op == "*":
            return wrap_int(a * b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        return a ^ b

    return f"({left_src} {op} {right_src})", evaluate


class TestExpressionSemantics:
    @settings(max_examples=60, deadline=None)
    @given(
        int_exprs(),
        st.integers(-30, 30),
        st.integers(-30, 30),
        st.integers(-30, 30),
    )
    def test_compiled_expression_matches_python_model(self, expr, a, b, c):
        source, evaluate = expr
        program = f"""
        void main() {{
            int a = {a}; int b = {b}; int c = {c};
            print({source});
        }}
        """
        module = compile_minic(program)
        expected = evaluate({"a": a, "b": b, "c": c})
        assert run_module(module).output == [str(expected)]


# ---------------------------------------------------------------- dominators


@st.composite
def random_cfgs(draw):
    """A random connected CFG over up to 8 blocks (plus entry/exit)."""
    n = draw(st.integers(2, 8))
    names = [f"N{i}" for i in range(n)]
    edges = {}
    for i, name in enumerate(names):
        choices = names[max(0, i - 2): i] + names[i + 1:]
        count = draw(st.integers(0, min(2, len(choices))))
        targets = draw(
            st.lists(
                st.sampled_from(choices),
                min_size=count,
                max_size=count,
                unique=True,
            )
        ) if choices else []
        edges[name] = targets
    return edges


class TestDominatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_cfgs())
    def test_entry_dominates_reachable(self, edges):
        cfg = CFGView(build_cfg(edges, entry="N0"))
        dom = dominators(cfg)
        for node in dom.idom:
            assert dom.dominates("N0", node)

    @settings(max_examples=60, deadline=None)
    @given(random_cfgs())
    def test_idom_strictly_dominates(self, edges):
        cfg = CFGView(build_cfg(edges, entry="N0"))
        dom = dominators(cfg)
        for node, parent in dom.idom.items():
            if parent is not None and node != dom.root:
                assert dom.strictly_dominates(parent, node)

    @settings(max_examples=60, deadline=None)
    @given(random_cfgs())
    def test_loop_headers_dominate_their_blocks(self, edges):
        func = build_cfg(edges, entry="N0")
        cfg = CFGView(func)
        dom = dominators(cfg)
        forest = find_loops(func, cfg, dom)
        for loop in forest:
            for block in loop.blocks:
                assert dom.dominates(loop.header, block)

    @settings(max_examples=40, deadline=None)
    @given(random_cfgs())
    def test_postdominators_total(self, edges):
        cfg = CFGView(build_cfg(edges, entry="N0"))
        pdom = post_dominators(cfg)
        for node in cfg.nodes():
            assert pdom.dominates(pdom.root, node)


# ---------------------------------------------------------------- end to end


@st.composite
def loop_programs(draw):
    """Random loop nests mixing DOALL writes, accumulators and branches."""
    iters = draw(st.integers(3, 20))
    stride = draw(st.integers(1, 3))
    acc_op = draw(st.sampled_from(["+", "^"]))
    acc_expr = draw(
        st.sampled_from(["i * 3", "a[i % 16]", "i * i + 1", "total % 7 + i"])
    )
    use_branch = draw(st.booleans())
    branch_mod = draw(st.integers(2, 4))
    inner = draw(st.integers(0, 12))
    body = []
    if inner:
        body.append(
            f"int k = 0; int f = 0;"
            f" while (k < {inner}) {{ f = f + (k ^ i); k++; }}"
            f" a[i % 16] = f;"
        )
    else:
        body.append("a[i % 16] = i * 2;")
    update = f"total = total {acc_op} ({acc_expr});"
    if use_branch:
        body.append(f"if (i % {branch_mod} == 0) {{ {update} }}")
    else:
        body.append(update)
    body_src = "\n        ".join(body)
    return f"""
    int a[16];
    int total;
    void main() {{
        int i;
        for (i = 0; i < {iters}; i = i + {stride}) {{
            {body_src}
        }}
        print(total);
        int j;
        int chk = 0;
        for (j = 0; j < 16; j++) {{ chk = chk ^ a[j] * (j + 1); }}
        print(chk);
    }}
    """


class TestParallelizationCorrectness:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(loop_programs(), st.sampled_from([2, 4, 6]))
    def test_parallel_output_equals_sequential(self, source, cores):
        module = compile_minic(source)
        baseline = run_module(module)
        from repro.analysis.loops import find_loops

        loop_ids = [
            l.id
            for l in find_loops(module.functions["main"])
            if l.parent is None
        ]
        result = parallelize_and_run(
            module,
            MachineConfig(cores=cores),
            loop_ids=loop_ids,
            record_traces=False,
        )
        assert result.parallel.result.output == baseline.output


class TestIRRoundTripProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(loop_programs())
    def test_print_parse_preserves_behaviour(self, source):
        """module_to_str / parse_module round-trips any frontend output."""
        from repro.ir import module_to_str, parse_module

        module = compile_minic(source)
        baseline = run_module(module)
        reparsed = parse_module(module_to_str(module))
        assert run_module(reparsed).output == baseline.output


class TestOptimizerProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(loop_programs())
    def test_optimizer_preserves_behaviour(self, source):
        """The generic optimizer never changes observable output."""
        from repro.transform.copyprop import optimize_module

        module = compile_minic(source)
        baseline = run_module(module)
        optimize_module(module)
        assert run_module(module).output == baseline.output
